//! Dual-head network (§4, Fig 5/6 of the paper).
//!
//! One shared *foundation model* (transformer or MoE-transformer) feeds two
//! decision heads:
//!
//! * the **V-head** (Q-value head) maps features to Q(s, no-submit) and
//!   Q(s, submit),
//! * the **P-head** maps features to action logits for the policy-gradient
//!   agent,
//!
//! plus a **reward head** used during offline foundation pretraining
//! (§4.9.1: the foundation learns to predict the observed episode reward
//! from the flattened state).
//!
//! Two action encodings are supported (DESIGN.md §3, substitution 4):
//! [`ActionEncoding::TwoHead`] evaluates both actions in one pass;
//! [`ActionEncoding::OrdinalInput`] reproduces the paper's layout, where an
//! ordinal action variable (−1 / +1, 0 for the P-head) is appended to every
//! state row and the foundation runs once per queried action.

use mirage_nn::foundation::{FoundationBatchCache, FoundationCache, FoundationKind, FoundationNet};
use mirage_nn::linear::{Linear, LinearCache};
use mirage_nn::param::{GradSink, Grads, ParamSet};
use mirage_nn::scratch::Scratch;
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::{EmbedRowCache, TransformerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How actions are presented to the Q function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionEncoding {
    /// Q-head outputs one value per action from a single foundation pass.
    TwoHead,
    /// The paper's layout: an ordinal action variable is appended to each
    /// state row; the foundation runs once per action.
    OrdinalInput,
}

/// Dual-head model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualHeadConfig {
    /// Foundation architecture.
    pub foundation: FoundationKind,
    /// Encoder hyperparameters; `input_dim` is the width of one state row
    /// *without* the ordinal variable.
    pub transformer: TransformerConfig,
    /// Action encoding for the Q path.
    pub action_encoding: ActionEncoding,
    /// When `true`, online head training does not update the foundation
    /// (the §4.9 two-phase recipe: offline foundation, online heads).
    pub freeze_foundation: bool,
    /// Parameter-init seed.
    pub seed: u64,
}

impl DualHeadConfig {
    /// Small-scale defaults for a given state-row width and history length.
    pub fn small(kind: FoundationKind, m: usize, k: usize, seed: u64) -> Self {
        Self {
            foundation: kind,
            transformer: TransformerConfig::small(m, k),
            action_encoding: ActionEncoding::TwoHead,
            freeze_foundation: false,
            seed,
        }
    }
}

/// The shared-foundation dual-head network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DualHeadNet {
    /// All parameters (foundation + heads).
    pub ps: ParamSet,
    /// Shared foundation.
    pub foundation: FoundationNet,
    /// Q-value head.
    pub q_head: Linear,
    /// Policy head (2 logits).
    pub p_head: Linear,
    /// Scalar reward head for offline pretraining.
    pub reward_head: Linear,
    /// Configuration the network was built with.
    pub cfg: DualHeadConfig,
    /// Param ids belonging to the foundation (for freezing).
    foundation_param_limit: usize,
}

/// Cache of one Q forward pass.
#[derive(Debug, Clone)]
pub struct QCache {
    /// Per-action (foundation cache, head cache); `TwoHead` uses index 0.
    passes: Vec<(FoundationCache, LinearCache)>,
}

/// Cache of one policy/reward forward pass.
#[derive(Debug, Clone)]
pub struct HeadCache {
    f_cache: FoundationCache,
    l_cache: LinearCache,
}

/// Per-episode inference caches for the batched Q/P fast paths: one
/// [`EmbedRowCache`] per (foundation pass, episode). [`TwoHead`]
/// encodings run one foundation pass; [`OrdinalInput`] runs one per
/// queried ordinal, and the augmented inputs differ per ordinal, so each
/// pass caches its embed rows separately.
///
/// These caches serve both greedy evaluation and lockstep *training
/// collection* (`act_batch` / `act_sample_batch`): between train steps
/// the weights are frozen, so cached embed rows stay valid across
/// decision ticks, and every train step ends by clearing them.
///
/// The caches key on input content only — after **any** update to the
/// network's parameters, call [`BatchInferCache::clear`] (the agents do
/// this at the end of every training step). Use separate caches for the
/// Q and P paths under [`OrdinalInput`]: their pass-0 inputs carry
/// different ordinals, and sharing would defeat (not corrupt) the reuse.
///
/// [`TwoHead`]: ActionEncoding::TwoHead
/// [`OrdinalInput`]: ActionEncoding::OrdinalInput
#[derive(Debug, Clone, Default)]
pub struct BatchInferCache {
    passes: Vec<Vec<EmbedRowCache>>,
}

/// Retained buffers for one batched *training* pass through a head path
/// (Q or P): the foundation batch cache, the stacked feature matrix the
/// head reads, and the gradient buffers the backward pass writes. Keep
/// one per head path and reuse it across updates — every buffer is reset
/// in place, so a shape-stationary training loop stops allocating after
/// its first mini-batch.
#[derive(Debug, Clone, Default)]
pub struct HeadBatchCache {
    f_cache: FoundationBatchCache,
    /// Ordinal-augmented input stack (P path only; unused under
    /// [`ActionEncoding::TwoHead`]).
    aug: Matrix,
    /// `batch × d_model` pooled features out of the foundation.
    feats: Matrix,
    /// Head-input gradient (`batch × d_model`).
    d_feats: Matrix,
}

impl BatchInferCache {
    /// Empty cache set; per-episode slots grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates every cached embed row. Must follow any parameter
    /// update on the network the cache serves.
    pub fn clear(&mut self) {
        for pass in &mut self.passes {
            for c in pass {
                c.clear();
            }
        }
    }

    /// The per-episode cache slice for foundation pass `idx`, grown to
    /// `batch` slots.
    fn pass(&mut self, idx: usize, batch: usize) -> &mut [EmbedRowCache] {
        while self.passes.len() <= idx {
            self.passes.push(Vec::new());
        }
        let pass = &mut self.passes[idx];
        while pass.len() < batch {
            pass.push(EmbedRowCache::new());
        }
        &mut pass[..batch]
    }
}

impl DualHeadNet {
    /// Builds foundation and heads from the config.
    pub fn new(cfg: DualHeadConfig) -> Self {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut tcfg = cfg.transformer;
        if cfg.action_encoding == ActionEncoding::OrdinalInput {
            tcfg.input_dim += 1; // room for the ordinal action variable
        }
        let foundation = FoundationNet::new(&mut ps, "foundation", cfg.foundation, tcfg, &mut rng);
        let foundation_param_limit = ps.len();
        let d = foundation.out_dim();
        let q_out = match cfg.action_encoding {
            ActionEncoding::TwoHead => 2,
            ActionEncoding::OrdinalInput => 1,
        };
        let q_head = Linear::new(&mut ps, "q_head", d, q_out, &mut rng);
        let p_head = Linear::new(&mut ps, "p_head", d, 2, &mut rng);
        let reward_head = Linear::new(&mut ps, "reward_head", d, 1, &mut rng);
        Self {
            ps,
            foundation,
            q_head,
            p_head,
            reward_head,
            cfg,
            foundation_param_limit,
        }
    }

    /// Whether `id` belongs to the foundation (vs a head).
    pub fn is_foundation_param(&self, id: mirage_nn::ParamId) -> bool {
        id.0 < self.foundation_param_limit
    }

    /// Appends the ordinal action column when the encoding requires it.
    fn augment(&self, state: &Matrix, ordinal: f32) -> Matrix {
        match self.cfg.action_encoding {
            ActionEncoding::TwoHead => state.clone(),
            ActionEncoding::OrdinalInput => {
                let mut out = Matrix::zeros(0, 0);
                self.augment_into(state, ordinal, &mut out);
                out
            }
        }
    }

    /// Writes `state` with the ordinal action column appended into `out`
    /// (no allocation once warm). Only meaningful under
    /// [`ActionEncoding::OrdinalInput`]; the two-head encoding feeds the
    /// state to the foundation unmodified.
    pub fn augment_into(&self, state: &Matrix, ordinal: f32, out: &mut Matrix) {
        out.reset(state.rows(), state.cols() + 1);
        for r in 0..state.rows() {
            for c in 0..state.cols() {
                out.set(r, c, state.get(r, c));
            }
            out.set(r, state.cols(), ordinal);
        }
    }

    /// Q-values for both actions: returns `[Q(s, no-submit), Q(s, submit)]`.
    pub fn q_forward(&self, state: &Matrix) -> ([f32; 2], QCache) {
        match self.cfg.action_encoding {
            ActionEncoding::TwoHead => {
                let (feat, f_cache) = self.foundation.forward(&self.ps, state);
                let (q, l_cache) = self.q_head.forward(&self.ps, &feat);
                (
                    [q.get(0, 0), q.get(0, 1)],
                    QCache {
                        passes: vec![(f_cache, l_cache)],
                    },
                )
            }
            ActionEncoding::OrdinalInput => {
                let mut vals = [0.0f32; 2];
                let mut passes = Vec::with_capacity(2);
                for (i, ordinal) in [(-1.0f32), 1.0].iter().enumerate() {
                    let x = self.augment(state, *ordinal);
                    let (feat, f_cache) = self.foundation.forward(&self.ps, &x);
                    let (q, l_cache) = self.q_head.forward(&self.ps, &feat);
                    vals[i] = q.get(0, 0);
                    passes.push((f_cache, l_cache));
                }
                (vals, QCache { passes })
            }
        }
    }

    /// Backward through the Q path with per-action output gradients.
    pub fn q_backward(&self, cache: &QCache, dq: [f32; 2], grads: &mut Grads) {
        match self.cfg.action_encoding {
            ActionEncoding::TwoHead => {
                let (f_cache, l_cache) = &cache.passes[0];
                let dy = Matrix::row_vector(vec![dq[0], dq[1]]);
                let d_feat = self.q_head.backward(&self.ps, l_cache, &dy, grads);
                if !self.cfg.freeze_foundation {
                    self.foundation
                        .backward_params_only(&self.ps, f_cache, &d_feat, grads);
                }
            }
            ActionEncoding::OrdinalInput => {
                for (i, (f_cache, l_cache)) in cache.passes.iter().enumerate() {
                    if dq[i] == 0.0 {
                        continue;
                    }
                    let dy = Matrix::row_vector(vec![dq[i]]);
                    let d_feat = self.q_head.backward(&self.ps, l_cache, &dy, grads);
                    if !self.cfg.freeze_foundation {
                        self.foundation
                            .backward_params_only(&self.ps, f_cache, &d_feat, grads);
                    }
                }
            }
        }
    }

    /// Policy logits (`1 × 2`). With ordinal encoding the action variable
    /// is 0, as the paper specifies for the PG network.
    pub fn p_forward(&self, state: &Matrix) -> (Matrix, HeadCache) {
        let x = self.augment(state, 0.0);
        let (feat, f_cache) = self.foundation.forward(&self.ps, &x);
        let (logits, l_cache) = self.p_head.forward(&self.ps, &feat);
        (logits, HeadCache { f_cache, l_cache })
    }

    /// Backward through the policy path.
    pub fn p_backward(&self, cache: &HeadCache, d_logits: &Matrix, grads: &mut Grads) {
        let d_feat = self
            .p_head
            .backward(&self.ps, &cache.l_cache, d_logits, grads);
        if !self.cfg.freeze_foundation {
            self.foundation
                .backward_params_only(&self.ps, &cache.f_cache, &d_feat, grads);
        }
    }

    /// Scalar reward prediction for offline pretraining. `action` supplies
    /// the ordinal when the encoding requires it.
    pub fn reward_forward(&self, state: &Matrix, action: Option<usize>) -> (f32, HeadCache) {
        let ordinal = match action {
            Some(1) => 1.0,
            Some(_) => -1.0,
            None => 0.0,
        };
        let x = self.augment(state, ordinal);
        let (feat, f_cache) = self.foundation.forward(&self.ps, &x);
        let (r, l_cache) = self.reward_head.forward(&self.ps, &feat);
        (r.get(0, 0), HeadCache { f_cache, l_cache })
    }

    /// Backward through the reward path. Pretraining always updates the
    /// foundation — that is its entire purpose — regardless of the online
    /// freeze flag.
    pub fn reward_backward(&self, cache: &HeadCache, d_r: f32, grads: &mut Grads) {
        let dy = Matrix::row_vector(vec![d_r]);
        let d_feat = self
            .reward_head
            .backward(&self.ps, &cache.l_cache, &dy, grads);
        self.foundation
            .backward_params_only(&self.ps, &cache.f_cache, &d_feat, grads);
    }

    /// Inference-only Q-values: no caches, every temporary drawn from
    /// `scratch`, zero allocations once the arena is warm. Bit-identical
    /// to [`DualHeadNet::q_forward`].
    pub fn q_values(&self, state: &Matrix, scratch: &mut Scratch) -> [f32; 2] {
        let d = self.foundation.out_dim();
        match self.cfg.action_encoding {
            ActionEncoding::TwoHead => {
                let mut feat = scratch.take(1, d);
                self.foundation
                    .forward_into(&self.ps, state, &mut feat, scratch);
                let mut q = scratch.take(1, 2);
                self.q_head.forward_into(&self.ps, &feat, &mut q);
                let vals = [q.get(0, 0), q.get(0, 1)];
                scratch.give(q);
                scratch.give(feat);
                vals
            }
            ActionEncoding::OrdinalInput => {
                let mut vals = [0.0f32; 2];
                let mut aug = scratch.take(state.rows(), state.cols() + 1);
                let mut feat = scratch.take(1, d);
                let mut q = scratch.take(1, 1);
                for (i, ordinal) in [-1.0f32, 1.0].iter().enumerate() {
                    self.augment_into(state, *ordinal, &mut aug);
                    self.foundation
                        .forward_into(&self.ps, &aug, &mut feat, scratch);
                    self.q_head.forward_into(&self.ps, &feat, &mut q);
                    vals[i] = q.get(0, 0);
                }
                scratch.give(q);
                scratch.give(feat);
                scratch.give(aug);
                vals
            }
        }
    }

    /// Inference-only action probabilities (softmaxed P-head output):
    /// zero allocations once `scratch` is warm, bit-identical to
    /// [`DualHeadNet::action_probs`].
    pub fn p_probs(&self, state: &Matrix, scratch: &mut Scratch) -> [f32; 2] {
        let d = self.foundation.out_dim();
        let mut feat = scratch.take(1, d);
        match self.cfg.action_encoding {
            ActionEncoding::TwoHead => {
                self.foundation
                    .forward_into(&self.ps, state, &mut feat, scratch);
            }
            ActionEncoding::OrdinalInput => {
                let mut aug = scratch.take(state.rows(), state.cols() + 1);
                self.augment_into(state, 0.0, &mut aug);
                self.foundation
                    .forward_into(&self.ps, &aug, &mut feat, scratch);
                scratch.give(aug);
            }
        }
        let mut logits = scratch.take(1, 2);
        self.p_head.forward_into(&self.ps, &feat, &mut logits);
        logits.softmax_rows_in_place();
        let probs = [logits.get(0, 0), logits.get(0, 1)];
        scratch.give(logits);
        scratch.give(feat);
        probs
    }

    /// Batched inference Q-values: `states` row-stacks `batch` state
    /// matrices (uniform row count per episode), and `out[b]` receives
    /// `[Q(s_b, no-submit), Q(s_b, submit)]`. One foundation pass (per
    /// ordinal) and one Q-head matmul cover the whole batch; `cache`
    /// holds the per-episode embed rows reused across decision ticks.
    /// Each episode's pair is bit-identical to a sequential
    /// [`DualHeadNet::q_values`] call on its state.
    pub fn q_values_batch(
        &self,
        states: &Matrix,
        batch: usize,
        out: &mut Vec<[f32; 2]>,
        scratch: &mut Scratch,
        cache: &mut BatchInferCache,
    ) {
        let d = self.foundation.out_dim();
        out.clear();
        match self.cfg.action_encoding {
            ActionEncoding::TwoHead => {
                let mut feats = scratch.take(batch, d);
                self.foundation.forward_batch_cached_into(
                    &self.ps,
                    states,
                    batch,
                    &mut feats,
                    scratch,
                    cache.pass(0, batch),
                );
                let mut q = scratch.take(batch, 2);
                self.q_head.forward_into(&self.ps, &feats, &mut q);
                out.extend((0..batch).map(|b| [q.get(b, 0), q.get(b, 1)]));
                scratch.give(q);
                scratch.give(feats);
            }
            ActionEncoding::OrdinalInput => {
                out.resize(batch, [0.0; 2]);
                let mut aug = scratch.take(states.rows(), states.cols() + 1);
                let mut feats = scratch.take(batch, d);
                let mut q = scratch.take(batch, 1);
                for (i, ordinal) in [-1.0f32, 1.0].iter().enumerate() {
                    self.augment_into(states, *ordinal, &mut aug);
                    self.foundation.forward_batch_cached_into(
                        &self.ps,
                        &aug,
                        batch,
                        &mut feats,
                        scratch,
                        cache.pass(i, batch),
                    );
                    self.q_head.forward_into(&self.ps, &feats, &mut q);
                    for (b, vals) in out.iter_mut().enumerate() {
                        vals[i] = q.get(b, 0);
                    }
                }
                scratch.give(q);
                scratch.give(feats);
                scratch.give(aug);
            }
        }
    }

    /// Batched inference action probabilities: the P-path analogue of
    /// [`DualHeadNet::q_values_batch`]. `out[b]` is episode `b`'s
    /// softmaxed `[p(no-submit), p(submit)]`, bit-identical to a
    /// sequential [`DualHeadNet::p_probs`] call.
    pub fn p_probs_batch(
        &self,
        states: &Matrix,
        batch: usize,
        out: &mut Vec<[f32; 2]>,
        scratch: &mut Scratch,
        cache: &mut BatchInferCache,
    ) {
        let d = self.foundation.out_dim();
        let mut feats = scratch.take(batch, d);
        match self.cfg.action_encoding {
            ActionEncoding::TwoHead => {
                self.foundation.forward_batch_cached_into(
                    &self.ps,
                    states,
                    batch,
                    &mut feats,
                    scratch,
                    cache.pass(0, batch),
                );
            }
            ActionEncoding::OrdinalInput => {
                let mut aug = scratch.take(states.rows(), states.cols() + 1);
                self.augment_into(states, 0.0, &mut aug);
                self.foundation.forward_batch_cached_into(
                    &self.ps,
                    &aug,
                    batch,
                    &mut feats,
                    scratch,
                    cache.pass(0, batch),
                );
                scratch.give(aug);
            }
        }
        let mut logits = scratch.take(batch, 2);
        self.p_head.forward_into(&self.ps, &feats, &mut logits);
        logits.softmax_rows_in_place();
        out.clear();
        out.extend((0..batch).map(|b| [logits.get(b, 0), logits.get(b, 1)]));
        scratch.give(logits);
        scratch.give(feats);
    }

    /// Whether the batched Q *training* path applies: the two-head
    /// encoding runs one foundation pass per state (the ordinal layout
    /// runs one per queried action with data-dependent skips, so it keeps
    /// the per-sample loop), and the foundation itself must support
    /// batched training (top-1 MoE does not).
    pub fn supports_batched_q_train(&self) -> bool {
        self.cfg.action_encoding == ActionEncoding::TwoHead
            && self.foundation.supports_batched_train()
    }

    /// Whether the batched P *training* path applies. The policy head
    /// always feeds the foundation one pass per state (ordinal 0), so
    /// only the foundation's own support matters.
    pub fn supports_batched_p_train(&self) -> bool {
        self.foundation.supports_batched_train()
    }

    /// Batched Q training forward: `states` row-stacks `batch` state
    /// matrices, `q` receives the `batch × 2` Q-pairs and `cache` is
    /// filled for [`DualHeadNet::q_backward_batch`]. Row `b` is
    /// bit-identical to [`DualHeadNet::q_forward`] on block `b` alone.
    /// Panics unless [`DualHeadNet::supports_batched_q_train`].
    pub fn q_forward_batch_train(
        &self,
        states: &Matrix,
        batch: usize,
        q: &mut Matrix,
        cache: &mut HeadBatchCache,
        scratch: &mut Scratch,
    ) {
        assert!(
            self.supports_batched_q_train(),
            "batched Q training requires the two-head encoding and a batch-capable foundation"
        );
        self.foundation.forward_batch_train(
            &self.ps,
            states,
            batch,
            &mut cache.feats,
            &mut cache.f_cache,
            scratch,
        );
        self.q_head.forward_into(&self.ps, &cache.feats, q);
    }

    /// Batched backward through the Q path: `dq` holds one `[dQ0, dQ1]`
    /// row per block and block `b`'s parameter gradients go to
    /// `sink.grads_for(b)` in ascending block order per parameter. With a
    /// fused sink this is bit-identical to `batch` sequential
    /// [`DualHeadNet::q_backward`] calls accumulating into one `Grads`.
    pub fn q_backward_batch(
        &self,
        cache: &mut HeadBatchCache,
        states: &Matrix,
        dq: &Matrix,
        batch: usize,
        sink: &mut GradSink<'_>,
        scratch: &mut Scratch,
    ) {
        self.q_head.backward_batch(
            &self.ps,
            &cache.feats,
            dq,
            batch,
            sink,
            &mut cache.d_feats,
            scratch,
        );
        if !self.cfg.freeze_foundation {
            self.foundation.backward_batch_params(
                &self.ps,
                &cache.f_cache,
                states,
                &cache.d_feats,
                sink,
                scratch,
            );
        }
    }

    /// Batched P training forward: the policy analogue of
    /// [`DualHeadNet::q_forward_batch_train`]. `logits` receives the
    /// `batch × 2` logit rows; under the ordinal encoding the stacked
    /// input is augmented with the P-head's ordinal 0 exactly as
    /// [`DualHeadNet::p_forward`] does per sample. Panics unless
    /// [`DualHeadNet::supports_batched_p_train`].
    pub fn p_forward_batch_train(
        &self,
        states: &Matrix,
        batch: usize,
        logits: &mut Matrix,
        cache: &mut HeadBatchCache,
        scratch: &mut Scratch,
    ) {
        assert!(
            self.supports_batched_p_train(),
            "batched P training requires a batch-capable foundation"
        );
        let xs: &Matrix = match self.cfg.action_encoding {
            ActionEncoding::TwoHead => states,
            ActionEncoding::OrdinalInput => {
                self.augment_into(states, 0.0, &mut cache.aug);
                &cache.aug
            }
        };
        self.foundation.forward_batch_train(
            &self.ps,
            xs,
            batch,
            &mut cache.feats,
            &mut cache.f_cache,
            scratch,
        );
        self.p_head.forward_into(&self.ps, &cache.feats, logits);
    }

    /// Batched backward through the P path: `d_logits` holds one row per
    /// block; gradients land in `sink.grads_for(b)` ascending, making a
    /// fused sink bit-identical to sequential [`DualHeadNet::p_backward`]
    /// calls in block order.
    pub fn p_backward_batch(
        &self,
        cache: &mut HeadBatchCache,
        states: &Matrix,
        d_logits: &Matrix,
        batch: usize,
        sink: &mut GradSink<'_>,
        scratch: &mut Scratch,
    ) {
        self.p_head.backward_batch(
            &self.ps,
            &cache.feats,
            d_logits,
            batch,
            sink,
            &mut cache.d_feats,
            scratch,
        );
        if !self.cfg.freeze_foundation {
            let xs: &Matrix = match self.cfg.action_encoding {
                ActionEncoding::TwoHead => states,
                ActionEncoding::OrdinalInput => &cache.aug,
            };
            self.foundation.backward_batch_params(
                &self.ps,
                &cache.f_cache,
                xs,
                &cache.d_feats,
                sink,
                scratch,
            );
        }
    }

    /// Greedy action under the Q function (allocating compatibility
    /// wrapper; the agents use [`DualHeadNet::q_values`] with a scratch).
    pub fn greedy_action(&self, state: &Matrix) -> usize {
        let (q, _) = self.q_forward(state);
        crate::greedy_pair(q)
    }

    /// Action probabilities under the policy head.
    pub fn action_probs(&self, state: &Matrix) -> [f32; 2] {
        let (logits, _) = self.p_forward(state);
        let sm = logits.softmax_rows();
        [sm.get(0, 0), sm.get(0, 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_nn::gradcheck::check_gradients;
    use mirage_nn::loss::mse;

    fn tiny_cfg(enc: ActionEncoding, kind: FoundationKind) -> DualHeadConfig {
        DualHeadConfig {
            foundation: kind,
            transformer: TransformerConfig {
                input_dim: 4,
                seq_len: 3,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: enc,
            freeze_foundation: false,
            seed: 1,
        }
    }

    fn state(seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::xavier(3, 4, &mut rng)
    }

    #[test]
    fn both_encodings_produce_two_q_values() {
        for enc in [ActionEncoding::TwoHead, ActionEncoding::OrdinalInput] {
            let net = DualHeadNet::new(tiny_cfg(enc, FoundationKind::Transformer));
            let (q, _) = net.q_forward(&state(0));
            assert!(q[0].is_finite() && q[1].is_finite());
        }
    }

    #[test]
    fn ordinal_encoding_distinguishes_actions() {
        let net = DualHeadNet::new(tiny_cfg(
            ActionEncoding::OrdinalInput,
            FoundationKind::Transformer,
        ));
        let (q, _) = net.q_forward(&state(3));
        assert_ne!(q[0], q[1], "different ordinals must give different Q");
    }

    #[test]
    fn q_gradcheck_two_head() {
        let net = DualHeadNet::new(tiny_cfg(
            ActionEncoding::TwoHead,
            FoundationKind::Transformer,
        ));
        let s = state(1);
        let target = Matrix::row_vector(vec![0.5, -0.5]);
        let loss_fn = |ps: &ParamSet| {
            let mut probe = net.clone();
            probe.ps = ps.clone();
            let (q, _) = probe.q_forward(&s);
            mse(&Matrix::row_vector(vec![q[0], q[1]]), &target).0
        };
        let (q, cache) = net.q_forward(&s);
        let (_, dq_mat) = mse(&Matrix::row_vector(vec![q[0], q[1]]), &target);
        let mut grads = Grads::new(&net.ps);
        net.q_backward(&cache, [dq_mat.get(0, 0), dq_mat.get(0, 1)], &mut grads);
        let ids: Vec<_> = grads.iter().map(|(id, _)| id).collect();
        let mut ps = net.ps.clone();
        check_gradients(&mut ps, &ids, loss_fn, &grads, 1e-2, 5e-2).unwrap();
    }

    #[test]
    fn q_gradcheck_ordinal_input() {
        let net = DualHeadNet::new(tiny_cfg(
            ActionEncoding::OrdinalInput,
            FoundationKind::Transformer,
        ));
        let s = state(2);
        // Loss touches only action 1 (the common TD case).
        let loss_fn = |ps: &ParamSet| {
            let mut probe = net.clone();
            probe.ps = ps.clone();
            let (q, _) = probe.q_forward(&s);
            (q[1] - 2.0) * (q[1] - 2.0)
        };
        let (q, cache) = net.q_forward(&s);
        let mut grads = Grads::new(&net.ps);
        net.q_backward(&cache, [0.0, 2.0 * (q[1] - 2.0)], &mut grads);
        let ids: Vec<_> = grads.iter().map(|(id, _)| id).collect();
        let mut ps = net.ps.clone();
        check_gradients(&mut ps, &ids, loss_fn, &grads, 1e-2, 5e-2).unwrap();
    }

    #[test]
    fn scratch_inference_matches_cached_forward_bitwise() {
        // The serving-time fast path (q_values/p_probs + Scratch) must
        // never drift from the training path, across encodings,
        // foundations and warm-scratch reuse.
        let mut scratch = mirage_nn::Scratch::new();
        for enc in [ActionEncoding::TwoHead, ActionEncoding::OrdinalInput] {
            for kind in [
                FoundationKind::Transformer,
                FoundationKind::MoE { experts: 2 },
            ] {
                let net = DualHeadNet::new(tiny_cfg(enc, kind));
                for seed in 0..4 {
                    let s = state(seed);
                    let (q_ref, _) = net.q_forward(&s);
                    assert_eq!(net.q_values(&s, &mut scratch), q_ref, "{enc:?}/{kind:?}");
                    let p_ref = net.action_probs(&s);
                    assert_eq!(net.p_probs(&s, &mut scratch), p_ref, "{enc:?}/{kind:?}");
                }
            }
        }
    }

    #[test]
    fn batched_inference_matches_sequential_bitwise() {
        // One batched forward over row-stacked episode states must equal
        // per-episode q_values / p_probs bit for bit, across encodings,
        // foundations, cache warm-up and batch-width changes.
        let mut scratch = mirage_nn::Scratch::new();
        let mut q_cache = BatchInferCache::new();
        let mut p_cache = BatchInferCache::new();
        let mut q_out = Vec::new();
        let mut p_out = Vec::new();
        for enc in [ActionEncoding::TwoHead, ActionEncoding::OrdinalInput] {
            for kind in [
                FoundationKind::Transformer,
                FoundationKind::MoE { experts: 2 },
            ] {
                let net = DualHeadNet::new(tiny_cfg(enc, kind));
                for batch in [1usize, 3, 2] {
                    let states: Vec<Matrix> = (0..batch).map(|b| state(b as u64)).collect();
                    let mut stacked = Matrix::zeros(batch * 3, 4);
                    for (b, s) in states.iter().enumerate() {
                        for r in 0..3 {
                            stacked.row_mut(b * 3 + r).copy_from_slice(s.row(r));
                        }
                    }
                    // Twice per width: cold caches, then full reuse.
                    for _ in 0..2 {
                        net.q_values_batch(&stacked, batch, &mut q_out, &mut scratch, &mut q_cache);
                        net.p_probs_batch(&stacked, batch, &mut p_out, &mut scratch, &mut p_cache);
                        for (b, s) in states.iter().enumerate() {
                            assert_eq!(
                                q_out[b],
                                net.q_values(s, &mut scratch),
                                "q {enc:?}/{kind:?} batch {batch} episode {b}"
                            );
                            assert_eq!(
                                p_out[b],
                                net.p_probs(s, &mut scratch),
                                "p {enc:?}/{kind:?} batch {batch} episode {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn freezing_blocks_foundation_gradients() {
        let mut cfg = tiny_cfg(ActionEncoding::TwoHead, FoundationKind::Transformer);
        cfg.freeze_foundation = true;
        let net = DualHeadNet::new(cfg);
        let s = state(4);
        let (_, cache) = net.q_forward(&s);
        let mut grads = Grads::new(&net.ps);
        net.q_backward(&cache, [1.0, 1.0], &mut grads);
        for (id, _) in grads.iter() {
            assert!(
                !net.is_foundation_param(id),
                "foundation param got a gradient"
            );
        }
        // Heads still learn.
        assert!(grads.get(net.q_head.w).is_some());
    }

    #[test]
    fn reward_path_always_trains_foundation() {
        let mut cfg = tiny_cfg(ActionEncoding::TwoHead, FoundationKind::Transformer);
        cfg.freeze_foundation = true; // must not affect pretraining
        let net = DualHeadNet::new(cfg);
        let s = state(5);
        let (_, cache) = net.reward_forward(&s, Some(1));
        let mut grads = Grads::new(&net.ps);
        net.reward_backward(&cache, 1.0, &mut grads);
        assert!(
            grads.iter().any(|(id, _)| net.is_foundation_param(id)),
            "pretraining must reach the foundation"
        );
    }

    #[test]
    fn p_head_probs_are_a_distribution() {
        let net = DualHeadNet::new(tiny_cfg(
            ActionEncoding::TwoHead,
            FoundationKind::MoE { experts: 2 },
        ));
        let p = net.action_probs(&state(6));
        assert!((p[0] + p[1] - 1.0).abs() < 1e-5);
        assert!(p[0] > 0.0 && p[1] > 0.0);
    }

    #[test]
    fn heads_share_the_foundation() {
        // A gradient step on the P path must change Q outputs too (shared
        // foundation), when not frozen.
        let net = DualHeadNet::new(tiny_cfg(
            ActionEncoding::TwoHead,
            FoundationKind::Transformer,
        ));
        let s = state(7);
        let (q_before, _) = net.q_forward(&s);
        let (logits, cache) = net.p_forward(&s);
        let mut grads = Grads::new(&net.ps);
        let d = logits.scale(1.0); // arbitrary gradient
        net.p_backward(&cache, &d, &mut grads);
        let mut moved = net.clone();
        moved.ps.apply_grads(&grads, |p, g| p.add_scaled(g, -0.5));
        let (q_after, _) = moved.q_forward(&s);
        assert!(
            (q_before[0] - q_after[0]).abs() > 1e-7 || (q_before[1] - q_after[1]).abs() > 1e-7,
            "P-path update should move shared foundation and hence Q"
        );
    }
}
