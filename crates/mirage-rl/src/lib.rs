//! Reinforcement-learning framework for the Mirage reproduction.
//!
//! Implements the paper's RL machinery on top of `mirage-nn`:
//!
//! * [`env::Environment`] — the agent–environment interface of §2.2,
//! * [`replay::ReplayBuffer`] — experience replay (§4.8),
//! * [`dualhead::DualHeadNet`] — the shared-foundation V-head/P-head
//!   architecture of Fig 5/6, with both action encodings,
//! * [`dqn::DqnAgent`] — ε-greedy DQN with Huber TD loss and an optional
//!   target network (§2.2, §4.9.2),
//! * [`pg::PgAgent`] — REINFORCE with moving-average baseline and entropy
//!   regularization (§2.3, §4.9.2),
//! * [`offline::pretrain_foundation`] — supervised reward-regression
//!   pretraining of the foundation (§4.9.1),
//! * [`guard::GuardedPolicy`] — output validation with graceful
//!   degradation to the reactive heuristic when a network emits
//!   non-finite or degenerate values.

pub mod dqn;
pub mod dualhead;
pub mod env;
pub mod guard;
pub mod offline;
pub mod pg;
pub mod replay;
pub mod schedule;

pub use dqn::{DqnAgent, DqnAgentState, DqnConfig};
pub use dualhead::{ActionEncoding, BatchInferCache, DualHeadConfig, DualHeadNet, HeadBatchCache};
pub use env::{rollout, Environment, StepResult};
pub use guard::{prob_pair_is_valid, q_pair_is_valid, GuardStats, GuardedPolicy, FALLBACK_ACTION};
pub use offline::{pretrain_foundation, reward_mse, PretrainConfig, RewardSample};
pub use pg::{EpisodeSample, PgAgent, PgAgentState, PgConfig};
pub use replay::{BalancedReplay, Experience, MiniBatch, ReplayBuffer};
pub use schedule::{EpsilonSchedule, ExploreLane, ServiceLanes};

/// Greedy action over a `[Q(no-submit), Q(submit)]` (or probability)
/// pair: act (1) only on a strict improvement, so ties keep the
/// conservative no-submit action. This is the one shared tie-breaking
/// rule behind `DqnAgent::act_greedy`, `PgAgent::act_greedy`,
/// `DualHeadNet::greedy_action` and every batched variant — they can
/// never diverge on the boundary case.
#[inline]
pub fn greedy_pair(v: [f32; 2]) -> usize {
    usize::from(v[1] > v[0])
}

/// Convenience imports.
pub mod prelude {
    pub use crate::dqn::{DqnAgent, DqnConfig};
    pub use crate::dualhead::{ActionEncoding, DualHeadConfig, DualHeadNet};
    pub use crate::env::{Environment, StepResult};
    pub use crate::offline::{pretrain_foundation, PretrainConfig, RewardSample};
    pub use crate::pg::{EpisodeSample, PgAgent, PgConfig};
    pub use crate::replay::{BalancedReplay, Experience, ReplayBuffer};
    pub use crate::schedule::{EpsilonSchedule, ExploreLane, ServiceLanes};
}
