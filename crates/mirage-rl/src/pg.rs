//! Policy-gradient (REINFORCE) agent (§2.3, §4.9 of the paper).
//!
//! The P-head outputs a softmax over {no-submit, submit}; actions are
//! sampled from it ("non-deterministic policy", §4.4). Training follows
//! Eq. 6: Monte-Carlo rollouts, return-weighted log-probability gradients,
//! with a moving-average baseline and optional entropy regularization for
//! variance control. Each episode's steps run as **one batched
//! forward/backward** (bit-identical to the per-step loop, kept as
//! [`PgAgent::train_episodes_scalar`], the pinned reference), and
//! [`PgAgent::train_episodes_sharded`] distributes whole episodes across
//! OS threads with a deterministic per-episode gradient all-reduce.

use mirage_nn::loss::policy_gradient_loss;
use mirage_nn::optim::{Adam, Optimizer};
use mirage_nn::param::{GradSink, Grads};
use mirage_nn::scratch::Scratch;
use mirage_nn::tensor::Matrix;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dualhead::{BatchInferCache, DualHeadNet, HeadBatchCache};
use crate::greedy_pair;
use crate::schedule::ExploreLane;

/// Categorical draw over a `[p(no-submit), p(submit)]` pair from one
/// uniform sample — the single sampler behind [`PgAgent::act`] and
/// [`PgAgent::act_sample_batch`], so the batched stochastic path can
/// never diverge from sequential sampling on the same draw.
#[inline]
fn sample_pair(p: [f32; 2], u: f32) -> usize {
    usize::from(u >= p[0])
}

/// REINFORCE hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PgConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// EMA coefficient for the return baseline.
    pub baseline_beta: f32,
    /// Entropy-bonus coefficient (0 disables).
    pub entropy_coef: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
}

impl Default for PgConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            baseline_beta: 0.9,
            entropy_coef: 0.01,
            grad_clip: 5.0,
        }
    }
}

/// One collected episode: the visited `(state, action)` pairs and the
/// episode return (the paper's delayed terminal reward).
#[derive(Debug, Clone)]
pub struct EpisodeSample {
    /// Trajectory of decisions.
    pub steps: Vec<(Matrix, usize)>,
    /// Total (undiscounted) episode return.
    pub episode_return: f32,
}

/// Everything a [`PgAgent`] needs to resume bit-identically after a
/// crash: weights, Adam moments, the EMA baseline and the episode clock.
#[derive(Debug, Clone)]
pub struct PgAgentState {
    /// Network parameters, in [`ParamSet`](mirage_nn::ParamSet)
    /// allocation order.
    pub net_params: Vec<Matrix>,
    /// Adam update steps taken.
    pub opt_t: u64,
    /// Adam first moments, by parameter position.
    pub opt_m: Vec<Option<Matrix>>,
    /// Adam second moments, by parameter position.
    pub opt_v: Vec<Option<Matrix>>,
    /// EMA return baseline.
    pub baseline: f32,
    /// Whether the baseline has absorbed its first batch.
    pub baseline_initialized: bool,
    /// Episodes consumed so far.
    pub episodes: u64,
}

/// REINFORCE agent over a [`DualHeadNet`].
#[derive(Debug, Clone)]
pub struct PgAgent {
    /// The dual-head network (P-head is the policy).
    pub net: DualHeadNet,
    opt: Adam,
    cfg: PgConfig,
    baseline: f32,
    baseline_initialized: bool,
    /// Episodes consumed so far.
    pub episodes: u64,
    /// Reusable inference buffers: serving-time decisions allocate
    /// nothing once this arena is warm.
    scratch: Scratch,
    /// Per-episode embed-row caches for the batched greedy path
    /// (invalidated after every training step).
    batch_cache: BatchInferCache,
    /// Reusable probability-pair buffer for the batched greedy path.
    batch_vals: Vec<[f32; 2]>,
    /// Retained activation caches for the batched training path.
    train_cache: HeadBatchCache,
    /// Retained accumulated-gradient buffer (reset each update).
    grads: Grads,
    /// Retained per-episode gradient buffer for the batched path.
    ep_grads: Grads,
}

impl PgAgent {
    /// Wraps a network with REINFORCE training machinery.
    pub fn new(net: DualHeadNet, cfg: PgConfig) -> Self {
        let opt = Adam::new(cfg.lr);
        let grads = Grads::new(&net.ps);
        let ep_grads = Grads::new(&net.ps);
        Self {
            net,
            opt,
            cfg,
            baseline: 0.0,
            baseline_initialized: false,
            episodes: 0,
            scratch: Scratch::new(),
            batch_cache: BatchInferCache::new(),
            batch_vals: Vec::new(),
            train_cache: HeadBatchCache::default(),
            grads,
            ep_grads,
        }
    }

    /// Current return baseline.
    pub fn baseline(&self) -> f32 {
        self.baseline
    }

    /// The raw probability pair `[p(wait), p(submit)]` for one state —
    /// the guarded inference path reads this to validate outputs before
    /// sampling from them. Identical to what [`act`](Self::act) samples.
    pub fn p_pair(&mut self, state: &Matrix) -> [f32; 2] {
        self.net.p_probs(state, &mut self.scratch)
    }

    /// Snapshots the full training state for crash-safe checkpointing.
    /// Round-trips through [`import_state`](Self::import_state).
    pub fn export_state(&self) -> PgAgentState {
        PgAgentState {
            net_params: self.net.ps.iter().map(|(_, m)| m.clone()).collect(),
            opt_t: self.opt.steps(),
            opt_m: self.opt.state().1.to_vec(),
            opt_v: self.opt.state().2.to_vec(),
            baseline: self.baseline,
            baseline_initialized: self.baseline_initialized,
            episodes: self.episodes,
        }
    }

    /// Restores an [`export_state`](Self::export_state) snapshot into an
    /// agent freshly built over the same network architecture. Panics if
    /// the parameter count does not match (wrong architecture).
    pub fn import_state(&mut self, state: PgAgentState) {
        assert_eq!(
            state.net_params.len(),
            self.net.ps.len(),
            "checkpoint parameter count does not match the network"
        );
        let ids: Vec<_> = self.net.ps.iter().map(|(id, _)| id).collect();
        for (id, m) in ids.iter().zip(state.net_params) {
            *self.net.ps.get_mut(*id) = m;
        }
        self.opt
            .restore_state(state.opt_t, state.opt_m, state.opt_v);
        self.baseline = state.baseline;
        self.baseline_initialized = state.baseline_initialized;
        self.episodes = state.episodes;
        // Cached embed rows belong to the pre-restore weights.
        self.batch_cache.clear();
    }

    /// Samples an action from the policy distribution (allocation-free
    /// `p_probs` fast path against the agent's scratch arena).
    pub fn act(&mut self, state: &Matrix, rng: &mut impl Rng) -> usize {
        let p = self.net.p_probs(state, &mut self.scratch);
        sample_pair(p, rng.gen::<f32>())
    }

    /// Stochastic actions for a lockstep batch in **one** batched
    /// forward: `states` row-stacks `rows.len()` state matrices, and
    /// batch row `r` samples the softmax categorically with one uniform
    /// draw from `lanes[rows[r]]`'s RNG stream (the lane indirection
    /// keeps each episode pinned to its stream as a narrowing batch
    /// drops finished episodes). Per row the action is bit-identical to
    /// [`act`](Self::act) on that state with that RNG; lane ε clocks are
    /// not touched (the policy head has no exploration schedule).
    pub fn act_sample_batch(
        &mut self,
        states: &Matrix,
        lanes: &mut [ExploreLane],
        rows: &[usize],
        actions: &mut Vec<usize>,
    ) {
        self.net.p_probs_batch(
            states,
            rows.len(),
            &mut self.batch_vals,
            &mut self.scratch,
            &mut self.batch_cache,
        );
        actions.clear();
        for (r, &l) in rows.iter().enumerate() {
            actions.push(sample_pair(self.batch_vals[r], lanes[l].rng.gen::<f32>()));
        }
    }

    /// Most-probable action (used for deterministic evaluation).
    pub fn act_greedy(&mut self, state: &Matrix) -> usize {
        let p = self.net.p_probs(state, &mut self.scratch);
        greedy_pair(p)
    }

    /// Most-probable actions for `batch` row-stacked states in **one**
    /// batched forward (`p_probs_batch` + the agent's embed-row caches):
    /// `actions[b]` is bit-identical to `act_greedy` on episode `b`'s
    /// state alone.
    pub fn act_greedy_batch(&mut self, states: &Matrix, batch: usize, actions: &mut Vec<usize>) {
        self.net.p_probs_batch(
            states,
            batch,
            &mut self.batch_vals,
            &mut self.scratch,
            &mut self.batch_cache,
        );
        actions.clear();
        actions.extend(self.batch_vals.iter().map(|&p| greedy_pair(p)));
    }

    /// One REINFORCE update from a batch of complete episodes; returns the
    /// mean surrogate loss.
    ///
    /// When the foundation supports batched training, each episode's
    /// steps run as **one** row-stacked forward/backward; the result is
    /// bit-identical to [`train_episodes_scalar`](Self::train_episodes_scalar),
    /// the pinned per-step reference (property-tested).
    pub fn train_episodes(&mut self, episodes: &[EpisodeSample]) -> f32 {
        if self.net.supports_batched_p_train() {
            self.train_episodes_batched(episodes)
        } else {
            self.train_episodes_scalar(episodes)
        }
    }

    /// Folds the batch's mean return into the EMA baseline and returns the
    /// value every episode's advantage is measured against. Shared by all
    /// three training paths so their advantages can never diverge.
    fn advance_baseline(&mut self, episodes: &[EpisodeSample]) -> f32 {
        let batch_mean: f32 =
            episodes.iter().map(|e| e.episode_return).sum::<f32>() / episodes.len() as f32;
        if self.baseline_initialized {
            self.baseline = self.cfg.baseline_beta * self.baseline
                + (1.0 - self.cfg.baseline_beta) * batch_mean;
        } else {
            self.baseline = batch_mean;
            self.baseline_initialized = true;
        }
        self.baseline
    }

    /// Shared update tail: mean-normalize, clip, Adam step, cache
    /// invalidation and the episode clock. Returns the mean loss.
    fn apply_update(&mut self, total_loss: f32, step_count: usize, n_episodes: usize) -> f32 {
        self.grads.scale(1.0 / step_count.max(1) as f32);
        if self.cfg.grad_clip > 0.0 {
            self.grads.clip_global_norm(self.cfg.grad_clip);
        }
        self.opt.step(&mut self.net.ps, &self.grads);
        // The parameters moved: cached embed rows are stale.
        self.batch_cache.clear();
        self.episodes += n_episodes as u64;
        total_loss / step_count.max(1) as f32
    }

    /// Pinned per-step reference implementation: one forward/backward per
    /// visited state, per-episode gradients merged in ascending episode
    /// order. The batched and sharded paths are property-tested
    /// bit-identical against this.
    pub fn train_episodes_scalar(&mut self, episodes: &[EpisodeSample]) -> f32 {
        assert!(!episodes.is_empty(), "empty episode batch");
        let baseline = self.advance_baseline(episodes);
        let entropy_coef = self.cfg.entropy_coef;
        let net = &self.net;

        let step_count: usize = episodes.iter().map(|e| e.steps.len()).sum();
        // Parallel per-episode passes, deterministic in-order merge.
        let per_episode: Vec<(f32, Grads)> = episodes
            .par_iter()
            .map(|ep| {
                let advantage = ep.episode_return - baseline;
                let mut grads = Grads::new(&net.ps);
                let mut loss_sum = 0.0f32;
                for (state, action) in &ep.steps {
                    let (logits, cache) = net.p_forward(state);
                    let (loss, mut d_logits) = policy_gradient_loss(&logits, *action, advantage);
                    if entropy_coef > 0.0 {
                        d_logits.add_assign(&entropy_grad(&logits).scale(entropy_coef));
                    }
                    net.p_backward(&cache, &d_logits, &mut grads);
                    loss_sum += loss;
                }
                (loss_sum, grads)
            })
            .collect();
        let (total_loss, merged) = per_episode.into_iter().fold(
            (0.0f32, Grads::new(&net.ps)),
            |(l1, mut g1), (l2, g2)| {
                g1.merge(g2);
                (l1 + l2, g1)
            },
        );

        self.grads.reset();
        self.grads.merge(merged);
        self.apply_update(total_loss, step_count, episodes.len())
    }

    /// Batched path: every episode's steps in one row-stacked
    /// forward/backward against retained buffers. Gradient accumulation
    /// stays per-episode (fused flat fold within an episode, ascending
    /// episode-order merge across episodes) so the f32 addition chains
    /// match the scalar reference exactly.
    fn train_episodes_batched(&mut self, episodes: &[EpisodeSample]) -> f32 {
        assert!(!episodes.is_empty(), "empty episode batch");
        let baseline = self.advance_baseline(episodes);
        let entropy_coef = self.cfg.entropy_coef;
        let step_count: usize = episodes.iter().map(|e| e.steps.len()).sum();

        let net = &self.net;
        let scratch = &mut self.scratch;
        self.grads.reset();
        let mut total_loss = 0.0f32;
        for ep in episodes {
            if ep.steps.is_empty() {
                // An empty episode contributes exactly +0.0 loss and no
                // gradient in the scalar fold; skipping it is bitwise
                // equivalent (the running total is never -0.0).
                continue;
            }
            let advantage = ep.episode_return - baseline;
            self.ep_grads.reset();
            let loss_sum = pg_episode_batched(
                net,
                ep,
                advantage,
                entropy_coef,
                &mut self.train_cache,
                &mut self.ep_grads,
                scratch,
            );
            self.grads.merge_ref(&self.ep_grads);
            total_loss += loss_sum;
        }
        self.apply_update(total_loss, step_count, episodes.len())
    }

    /// Distributes whole episodes across `workers` OS threads, each
    /// producing isolated per-episode gradients, then all-reduces them in
    /// ascending episode order on the coordinator — bit-identical to
    /// [`train_episodes`](Self::train_episodes) for every worker count.
    pub fn train_episodes_sharded(&mut self, episodes: &[EpisodeSample], workers: usize) -> f32 {
        let workers = workers.max(1).min(episodes.len().max(1));
        if workers <= 1 {
            return self.train_episodes(episodes);
        }
        assert!(!episodes.is_empty(), "empty episode batch");
        let baseline = self.advance_baseline(episodes);
        let entropy_coef = self.cfg.entropy_coef;
        let step_count: usize = episodes.iter().map(|e| e.steps.len()).sum();

        let net = &self.net;
        let n = episodes.len();
        let mut per_episode: Vec<Grads> = (0..n).map(|_| Grads::new(&net.ps)).collect();
        let mut losses = vec![0.0f32; n];
        std::thread::scope(|scope| {
            let mut eps_rest = episodes;
            let mut grads_rest = per_episode.as_mut_slice();
            let mut losses_rest = losses.as_mut_slice();
            for w in 0..workers {
                // Contiguous shards, remainder spread over leading workers.
                let k = n / workers + usize::from(w < n % workers);
                let (eps, er) = eps_rest.split_at(k);
                let (g, gr) = grads_rest.split_at_mut(k);
                let (l, lr) = losses_rest.split_at_mut(k);
                eps_rest = er;
                grads_rest = gr;
                losses_rest = lr;
                scope.spawn(move || pg_shard(net, eps, baseline, entropy_coef, g, l));
            }
        });

        // Deterministic all-reduce: ascending episode order, regardless of
        // which worker produced which gradient.
        self.grads.reset();
        let mut total_loss = 0.0f32;
        for (l, g) in losses.iter().zip(&per_episode) {
            total_loss += *l;
            self.grads.merge_ref(g);
        }
        self.apply_update(total_loss, step_count, episodes.len())
    }
}

/// One episode's REINFORCE pass as a single row-stacked forward/backward.
/// Accumulates into `grads` (caller resets) and returns the episode's loss
/// sum. Bit-identical to the per-step loop in `train_episodes_scalar`.
fn pg_episode_batched(
    net: &DualHeadNet,
    ep: &EpisodeSample,
    advantage: f32,
    entropy_coef: f32,
    cache: &mut HeadBatchCache,
    grads: &mut Grads,
    scratch: &mut Scratch,
) -> f32 {
    let t_count = ep.steps.len();
    if t_count == 0 {
        return 0.0;
    }
    let (seq, m) = ep.steps[0].0.shape();
    let mut states = scratch.take(t_count * seq, m);
    for (t, (state, _)) in ep.steps.iter().enumerate() {
        assert_eq!(
            state.shape(),
            (seq, m),
            "episode states must share one shape"
        );
        for r in 0..seq {
            states.row_mut(t * seq + r).copy_from_slice(state.row(r));
        }
    }
    let mut logits = scratch.take(t_count, 2);
    net.p_forward_batch_train(&states, t_count, &mut logits, cache, scratch);

    let mut dl = scratch.take(t_count, 2);
    let mut row = scratch.take(1, 2);
    let mut loss_sum = 0.0f32;
    for (t, (_, action)) in ep.steps.iter().enumerate() {
        row.row_mut(0).copy_from_slice(logits.row(t));
        let (loss, mut d_logits) = policy_gradient_loss(&row, *action, advantage);
        if entropy_coef > 0.0 {
            d_logits.add_assign(&entropy_grad(&row).scale(entropy_coef));
        }
        dl.row_mut(t).copy_from_slice(d_logits.row(0));
        loss_sum += loss;
    }

    let mut sink = GradSink::Fused(grads);
    net.p_backward_batch(cache, &states, &dl, t_count, &mut sink, scratch);
    scratch.give(row);
    scratch.give(dl);
    scratch.give(logits);
    scratch.give(states);
    loss_sum
}

/// Worker body for [`PgAgent::train_episodes_sharded`]: one isolated
/// gradient + loss per episode in the shard, batched per episode when the
/// foundation supports it, otherwise the pinned per-step reference.
fn pg_shard(
    net: &DualHeadNet,
    episodes: &[EpisodeSample],
    baseline: f32,
    entropy_coef: f32,
    grads: &mut [Grads],
    losses: &mut [f32],
) {
    let mut scratch = Scratch::new();
    let batched = net.supports_batched_p_train();
    let mut cache = HeadBatchCache::default();
    for (ep, (g, l)) in episodes.iter().zip(grads.iter_mut().zip(losses.iter_mut())) {
        let advantage = ep.episode_return - baseline;
        if batched {
            *l = pg_episode_batched(
                net,
                ep,
                advantage,
                entropy_coef,
                &mut cache,
                g,
                &mut scratch,
            );
        } else {
            let mut loss_sum = 0.0f32;
            for (state, action) in &ep.steps {
                let (logits, step_cache) = net.p_forward(state);
                let (loss, mut d_logits) = policy_gradient_loss(&logits, *action, advantage);
                if entropy_coef > 0.0 {
                    d_logits.add_assign(&entropy_grad(&logits).scale(entropy_coef));
                }
                net.p_backward(&step_cache, &d_logits, g);
                loss_sum += loss;
            }
            *l = loss_sum;
        }
    }
}

/// Gradient of `−H(π)` w.r.t. the logits (added to push *toward* higher
/// entropy when scaled positively and subtracted from the loss gradient):
/// `d(−H)/dz_i = p_i (log p_i + H)`.
fn entropy_grad(logits: &Matrix) -> Matrix {
    let p = logits.softmax_rows();
    let h: f32 = -p
        .data()
        .iter()
        .map(|&x| if x > 0.0 { x * x.ln() } else { 0.0 })
        .sum::<f32>();
    p.map(|pi| if pi > 0.0 { pi * (pi.ln() + h) } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualhead::{ActionEncoding, DualHeadConfig, DualHeadNet};
    use crate::env::test_envs::SignBandit;
    use crate::env::Environment;
    use mirage_nn::foundation::FoundationKind;
    use mirage_nn::transformer::TransformerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(kind: FoundationKind, seed: u64) -> DualHeadNet {
        DualHeadNet::new(DualHeadConfig {
            foundation: kind,
            transformer: TransformerConfig {
                input_dim: 3,
                seq_len: 2,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: ActionEncoding::TwoHead,
            freeze_foundation: false,
            seed,
        })
    }

    fn collect_episodes(
        agent: &mut PgAgent,
        env: &mut SignBandit,
        rng: &mut StdRng,
        n: usize,
    ) -> Vec<EpisodeSample> {
        (0..n)
            .map(|_| {
                let state = env.reset();
                let action = agent.act(&state, rng);
                let r = env.step(action);
                EpisodeSample {
                    steps: vec![(state, action)],
                    episode_return: r.reward,
                }
            })
            .collect()
    }

    fn accuracy(agent: &mut PgAgent, seed: u64, trials: usize) -> f64 {
        let mut env = SignBandit::new(seed, 2, 3);
        let mut ok = 0;
        for _ in 0..trials {
            let s = env.reset();
            if agent.act_greedy(&s) == env.correct_action() {
                ok += 1;
            }
        }
        ok as f64 / trials as f64
    }

    #[test]
    fn reinforce_learns_the_sign_bandit() {
        let mut agent = PgAgent::new(
            tiny_net(FoundationKind::Transformer, 21),
            PgConfig {
                lr: 5e-3,
                ..PgConfig::default()
            },
        );
        let mut env = SignBandit::new(22, 2, 3);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..120 {
            let eps = collect_episodes(&mut agent, &mut env, &mut rng, 16);
            agent.train_episodes(&eps);
        }
        let acc = accuracy(&mut agent, 99, 100);
        assert!(acc > 0.85, "PG should solve the bandit, got {acc:.2}");
    }

    #[test]
    fn moe_foundation_also_learns() {
        let mut agent = PgAgent::new(
            tiny_net(FoundationKind::MoE { experts: 2 }, 31),
            PgConfig {
                lr: 5e-3,
                ..PgConfig::default()
            },
        );
        let mut env = SignBandit::new(32, 2, 3);
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..120 {
            let eps = collect_episodes(&mut agent, &mut env, &mut rng, 16);
            agent.train_episodes(&eps);
        }
        let acc = accuracy(&mut agent, 98, 100);
        assert!(acc > 0.8, "MoE+PG accuracy {acc:.2}");
    }

    #[test]
    fn baseline_tracks_mean_return() {
        let mut agent = PgAgent::new(
            tiny_net(FoundationKind::Transformer, 41),
            PgConfig::default(),
        );
        let eps: Vec<EpisodeSample> = (0..8)
            .map(|i| EpisodeSample {
                steps: vec![(Matrix::zeros(2, 3), 0)],
                episode_return: if i % 2 == 0 { 1.0 } else { -1.0 },
            })
            .collect();
        agent.train_episodes(&eps);
        assert!(agent.baseline().abs() < 1e-6, "mean of ±1 returns is 0");
        let all_pos: Vec<EpisodeSample> = (0..8)
            .map(|_| EpisodeSample {
                steps: vec![(Matrix::zeros(2, 3), 0)],
                episode_return: 2.0,
            })
            .collect();
        agent.train_episodes(&all_pos);
        assert!(agent.baseline() > 0.0);
    }

    #[test]
    fn act_sample_batch_rows_match_sequential_sampling_bitwise() {
        // Batched stochastic acting == sequential `act` per row: one
        // p_probs_batch forward, one uniform draw per lane, including
        // across a train step and a narrowed, permuted batch.
        for kind in [
            FoundationKind::Transformer,
            FoundationKind::MoE { experts: 2 },
        ] {
            let mut batch_agent = PgAgent::new(tiny_net(kind, 61), PgConfig::default());
            let mut seq_agent = batch_agent.clone();
            let mut batch_lanes: Vec<ExploreLane> =
                (0..3).map(|l| ExploreLane::seeded(200 + l, 0)).collect();
            let mut seq_lanes = batch_lanes.clone();
            let mut rng = StdRng::seed_from_u64(62);
            let states: Vec<Matrix> = (0..3).map(|_| Matrix::xavier(2, 3, &mut rng)).collect();

            let mut actions = Vec::new();
            for tick in 0..5 {
                let rows: Vec<usize> = match tick {
                    0 | 1 => vec![0, 1, 2],
                    2 => vec![2, 1],
                    _ => vec![0],
                };
                let mut stacked = Matrix::zeros(rows.len() * 2, 3);
                for (r, &l) in rows.iter().enumerate() {
                    for i in 0..2 {
                        stacked.row_mut(r * 2 + i).copy_from_slice(states[l].row(i));
                    }
                }
                batch_agent.act_sample_batch(&stacked, &mut batch_lanes, &rows, &mut actions);
                for (r, &l) in rows.iter().enumerate() {
                    let expect = seq_agent.act(&states[l], &mut seq_lanes[l].rng);
                    assert_eq!(actions[r], expect, "{kind:?} tick {tick} row {r} lane {l}");
                }
                if tick == 2 {
                    let eps: Vec<EpisodeSample> = (0..4)
                        .map(|i| EpisodeSample {
                            steps: vec![(states[i % 3].clone(), i % 2)],
                            episode_return: -(i as f32),
                        })
                        .collect();
                    batch_agent.train_episodes(&eps);
                    seq_agent.train_episodes(&eps);
                }
            }
        }
    }

    #[test]
    fn sampling_follows_the_policy_distribution() {
        let mut agent = PgAgent::new(
            tiny_net(FoundationKind::Transformer, 51),
            PgConfig::default(),
        );
        let s = Matrix::zeros(2, 3);
        let p = agent.net.action_probs(&s);
        let mut rng = StdRng::seed_from_u64(52);
        let n = 2000;
        let ones: usize = (0..n).map(|_| agent.act(&s, &mut rng)).sum();
        let freq = ones as f32 / n as f32;
        assert!(
            (freq - p[1]).abs() < 0.05,
            "sample frequency {freq:.3} vs probability {:.3}",
            p[1]
        );
    }

    #[test]
    fn entropy_gradient_is_zero_at_uniform() {
        let g = entropy_grad(&Matrix::row_vector(vec![0.5, 0.5]));
        assert!(g.data().iter().all(|v| v.abs() < 1e-6));
        // And pushes toward uniform when skewed: the larger-probability
        // logit gets a positive (loss-increasing) component.
        let g = entropy_grad(&Matrix::row_vector(vec![2.0, 0.0]));
        assert!(g.get(0, 0) > 0.0);
        assert!(g.get(0, 1) < 0.0);
    }
}
