//! The agent–environment interface (§2.2 of the paper).
//!
//! States are matrices (the `k × m` state matrix of §4.2); actions are
//! small discrete indices (Mirage has two: no-submit = 0, submit = 1).
//!
//! The trait is deliberately shape-agnostic: `m` is whatever the
//! environment's encoder produces. Mirage's encoder is the paper's 40
//! variables plus two fault-state variables (healthy-node fraction,
//! recent eviction rate) that stay zero unless fault features are
//! enabled — agents trained fault-blind keep working, agents evaluated
//! under chaos can observe cluster health through the same interface.

use mirage_nn::Matrix;

/// Result of one environment transition.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// State after the transition.
    pub state: Matrix,
    /// Immediate reward for the transition.
    pub reward: f32,
    /// Whether the episode terminated.
    pub done: bool,
}

/// A reinforcement-learning environment with discrete actions.
pub trait Environment {
    /// Resets to an initial state and returns it.
    fn reset(&mut self) -> Matrix;

    /// Current observable state.
    fn state(&self) -> Matrix;

    /// Applies `action` and advances the environment.
    fn step(&mut self, action: usize) -> StepResult;

    /// Number of discrete actions (2 for Mirage).
    fn action_count(&self) -> usize;
}

/// Runs a full episode with the given action-selection closure; returns the
/// visited `(state, action)` pairs and the summed reward. A step budget
/// guards against policies that never terminate (the paper handles the
/// analogous case with ε-exploration on an otherwise never-submitting DQN).
pub fn rollout(
    env: &mut dyn Environment,
    mut select: impl FnMut(&Matrix) -> usize,
    max_steps: usize,
) -> (Vec<(Matrix, usize)>, f32) {
    let mut state = env.reset();
    let mut trajectory = Vec::new();
    let mut total = 0.0;
    for _ in 0..max_steps {
        let action = select(&state);
        let result = env.step(action);
        trajectory.push((state, action));
        total += result.reward;
        state = result.state;
        if result.done {
            break;
        }
    }
    (trajectory, total)
}

#[cfg(test)]
pub(crate) mod test_envs {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// One-step contextual bandit: the state is a `seq × m` matrix; the
    /// rewarded action is 1 if the matrix mean is positive, else 0.
    pub struct SignBandit {
        pub rng: StdRng,
        pub seq: usize,
        pub m: usize,
        state: Matrix,
    }

    impl SignBandit {
        pub fn new(seed: u64, seq: usize, m: usize) -> Self {
            let mut rng = StdRng::seed_from_u64(seed);
            let state = Self::draw(&mut rng, seq, m);
            Self { rng, seq, m, state }
        }

        fn draw(rng: &mut StdRng, seq: usize, m: usize) -> Matrix {
            // Mean offset ±0.5 with noise: clearly separable but not trivial.
            let sign: f32 = if rng.gen::<bool>() { 0.5 } else { -0.5 };
            Matrix::from_fn(seq, m, |_, _| sign + rng.gen_range(-0.4..0.4))
        }

        pub fn correct_action(&self) -> usize {
            usize::from(self.state.sum() > 0.0)
        }
    }

    impl Environment for SignBandit {
        fn reset(&mut self) -> Matrix {
            self.state = Self::draw(&mut self.rng, self.seq, self.m);
            self.state.clone()
        }

        fn state(&self) -> Matrix {
            self.state.clone()
        }

        fn step(&mut self, action: usize) -> StepResult {
            let reward = if action == self.correct_action() {
                1.0
            } else {
                -1.0
            };
            let state = self.reset();
            StepResult {
                state,
                reward,
                done: true,
            }
        }

        fn action_count(&self) -> usize {
            2
        }
    }

    /// Deterministic chain MDP of length `n`: action 1 moves right (reward
    /// 1 at the end), action 0 resets to the start. Tests bootstrapped
    /// credit assignment across steps.
    pub struct Chain {
        pub n: usize,
        pub pos: usize,
    }

    impl Chain {
        pub fn new(n: usize) -> Self {
            Self { n, pos: 0 }
        }

        fn encode(&self) -> Matrix {
            Matrix::from_fn(1, self.n, |_, c| if c == self.pos { 1.0 } else { 0.0 })
        }
    }

    impl Environment for Chain {
        fn reset(&mut self) -> Matrix {
            self.pos = 0;
            self.encode()
        }

        fn state(&self) -> Matrix {
            self.encode()
        }

        fn step(&mut self, action: usize) -> StepResult {
            if action == 1 {
                self.pos += 1;
                if self.pos >= self.n - 1 {
                    let s = self.encode();
                    self.pos = 0;
                    return StepResult {
                        state: s,
                        reward: 1.0,
                        done: true,
                    };
                }
            } else {
                self.pos = 0;
            }
            StepResult {
                state: self.encode(),
                reward: 0.0,
                done: false,
            }
        }

        fn action_count(&self) -> usize {
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_envs::*;
    use super::*;

    #[test]
    fn rollout_collects_trajectory_until_done() {
        let mut env = SignBandit::new(0, 2, 3);
        let (traj, _total) = rollout(&mut env, |_| 1, 100);
        assert_eq!(traj.len(), 1, "bandit terminates after one step");
    }

    #[test]
    fn rollout_respects_step_budget() {
        let mut env = Chain::new(50);
        // Never progresses: action 0 forever.
        let (traj, total) = rollout(&mut env, |_| 0, 10);
        assert_eq!(traj.len(), 10);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn chain_rewards_persistent_rightward_policy() {
        let mut env = Chain::new(5);
        let (traj, total) = rollout(&mut env, |_| 1, 100);
        assert_eq!(total, 1.0);
        assert_eq!(traj.len(), 4, "n−1 steps to the end");
    }

    #[test]
    fn bandit_rewards_match_the_sign_rule() {
        let mut env = SignBandit::new(1, 2, 3);
        for _ in 0..20 {
            let correct = env.correct_action();
            let r = env.step(correct);
            assert_eq!(r.reward, 1.0);
            let wrong = 1 - env.correct_action();
            let r = env.step(wrong);
            assert_eq!(r.reward, -1.0);
        }
    }
}
