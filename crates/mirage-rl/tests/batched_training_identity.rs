//! Agent-level bit-identity contracts for the batched/parallel training
//! paths (PR 9 tentpole):
//!
//! * `DqnAgent::train_batch` (batched row-stacked update) must be
//!   bitwise identical to `train_batch_scalar`, the pinned per-sample
//!   reference — losses and every parameter, across foundation kinds and
//!   action encodings, over multiple sequential updates (retained caches
//!   must never go stale).
//! * `DqnAgent::train_minibatch_sharded` (multi-thread deterministic
//!   all-reduce) must be bitwise identical to the unsharded update for
//!   every worker count.
//! * `ReplayBuffer::sample_minibatch` / `BalancedReplay::sample_minibatch`
//!   must consume the exact RNG draw stream of `sample_into` and assemble
//!   the same rows.
//! * `PgAgent::train_episodes` (batched) and `train_episodes_sharded`
//!   must match `train_episodes_scalar` bitwise.

use mirage_nn::foundation::FoundationKind;
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::TransformerConfig;
use mirage_rl::{
    ActionEncoding, BalancedReplay, DqnAgent, DqnConfig, DualHeadConfig, DualHeadNet,
    EpisodeSample, Experience, MiniBatch, PgAgent, PgConfig, ReplayBuffer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const KINDS: [FoundationKind; 3] = [
    FoundationKind::Transformer,
    FoundationKind::MoE { experts: 2 },
    FoundationKind::MoETopOne { experts: 2 },
];

fn tiny_net(kind: FoundationKind, encoding: ActionEncoding, seed: u64) -> DualHeadNet {
    DualHeadNet::new(DualHeadConfig {
        foundation: kind,
        transformer: TransformerConfig {
            input_dim: 3,
            seq_len: 2,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: encoding,
        freeze_foundation: false,
        seed,
    })
}

fn assert_nets_bitwise_eq(a: &DualHeadNet, b: &DualHeadNet, ctx: &str) {
    for ((id_a, m_a), (id_b, m_b)) in a.ps.iter().zip(b.ps.iter()) {
        assert_eq!(id_a, id_b, "{ctx}: param order diverged");
        for (i, (&x, &y)) in m_a.data().iter().zip(m_b.data().iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: param {id_a:?} element {i}: {x} vs {y}"
            );
        }
    }
}

/// `n` experiences over `2 × 3` states: input-dim 3 minus the ordinal
/// column the `OrdinalInput` encoding appends. A mix of terminal and
/// bootstrapped transitions, with ties in neither.
fn make_batch(rng: &mut StdRng, n: usize, cols: usize) -> Vec<Experience> {
    (0..n)
        .map(|i| {
            let state = Matrix::xavier(2, cols, rng);
            let action = i % 2;
            let reward = rng.gen::<f32>() - 0.5;
            if i % 3 == 0 {
                Experience::terminal(state, action, reward)
            } else {
                Experience::step(state, action, reward, Matrix::xavier(2, cols, rng))
            }
        })
        .collect()
}

/// State row width: `input_dim` under both encodings (`OrdinalInput`
/// widens the network input internally for the appended ordinal column).
const STATE_COLS: usize = 3;

#[test]
fn dqn_batched_update_matches_scalar_reference_bitwise() {
    for kind in KINDS {
        for encoding in [ActionEncoding::TwoHead, ActionEncoding::OrdinalInput] {
            let cfg = DqnConfig {
                gamma: 0.9,
                target_sync: 2, // exercise a target sync mid-sequence
                ..DqnConfig::default()
            };
            let mut batched = DqnAgent::new(tiny_net(kind, encoding, 7), cfg);
            let mut scalar = batched.clone();
            let mut rng = StdRng::seed_from_u64(11);
            for step in 0..3 {
                let batch = make_batch(&mut rng, 5 + step, STATE_COLS);
                let refs: Vec<&Experience> = batch.iter().collect();
                let lb = batched.train_batch(&refs);
                let ls = scalar.train_batch_scalar(&refs);
                assert_eq!(
                    lb.to_bits(),
                    ls.to_bits(),
                    "{kind:?}/{encoding:?} step {step}: loss {lb} vs {ls}"
                );
                assert_nets_bitwise_eq(
                    &batched.net,
                    &scalar.net,
                    &format!("{kind:?}/{encoding:?} step {step}"),
                );
            }
        }
    }
}

#[test]
fn dqn_sharded_update_matches_unsharded_bitwise() {
    for kind in KINDS {
        for workers in [2usize, 3, 8] {
            let cfg = DqnConfig {
                gamma: 0.9,
                target_sync: 2,
                ..DqnConfig::default()
            };
            let mut unsharded = DqnAgent::new(tiny_net(kind, ActionEncoding::TwoHead, 19), cfg);
            let mut sharded = unsharded.clone();
            let mut rng = StdRng::seed_from_u64(23);
            let mut mb = MiniBatch::new();
            for step in 0..3 {
                let batch = make_batch(&mut rng, 6, 3);
                let refs: Vec<&Experience> = batch.iter().collect();
                mb.assemble_refs(&refs);
                let lu = unsharded.train_minibatch(&mb);
                let lw = sharded.train_minibatch_sharded(&mb, workers);
                assert_eq!(
                    lu.to_bits(),
                    lw.to_bits(),
                    "{kind:?} W={workers} step {step}: loss {lu} vs {lw}"
                );
                assert_nets_bitwise_eq(
                    &unsharded.net,
                    &sharded.net,
                    &format!("{kind:?} W={workers} step {step}"),
                );
            }
        }
    }
}

fn assert_minibatch_matches_refs(mb: &MiniBatch, refs: &[&Experience], ctx: &str) {
    let mut expect = MiniBatch::new();
    expect.assemble_refs(refs);
    assert_eq!(mb.len, expect.len, "{ctx}: len");
    assert_eq!(mb.seq, expect.seq, "{ctx}: seq");
    assert_eq!(mb.actions, expect.actions, "{ctx}: actions");
    assert_eq!(mb.next_idx, expect.next_idx, "{ctx}: next_idx");
    for (name, got, want) in [
        ("states", &mb.states, &expect.states),
        ("next_states", &mb.next_states, &expect.next_states),
    ] {
        assert_eq!(got.shape(), want.shape(), "{ctx}: {name} shape");
        for (&x, &y) in got.data().iter().zip(want.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: {name} payload");
        }
    }
    for (r, (&x, &y)) in mb.rewards.iter().zip(expect.rewards.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: reward {r}");
    }
}

#[test]
fn replay_sample_minibatch_consumes_the_sample_into_draw_stream() {
    let mut fill_rng = StdRng::seed_from_u64(31);
    let mut plain = ReplayBuffer::new(16);
    let mut balanced = BalancedReplay::new(16, 16);
    for e in make_batch(&mut fill_rng, 12, 3) {
        plain.push(e.clone());
        balanced.push(e);
    }

    for n in [1usize, 4, 9] {
        // Plain buffer: identical draws, identical rows.
        let mut rng_a = StdRng::seed_from_u64(100 + n as u64);
        let mut rng_b = rng_a.clone();
        let mut refs = Vec::new();
        plain.sample_into(&mut rng_a, n, &mut refs);
        let mut mb = MiniBatch::new();
        plain.sample_minibatch(&mut rng_b, n, &mut mb);
        assert_minibatch_matches_refs(&mb, &refs, &format!("plain n={n}"));
        // Both samplers must leave the RNG at the same point.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "plain n={n}: rng");

        // Balanced buffer: same wait/submit split and draw order.
        let mut rng_a = StdRng::seed_from_u64(200 + n as u64);
        let mut rng_b = rng_a.clone();
        refs.clear();
        balanced.sample_into(&mut rng_a, n, &mut refs);
        balanced.sample_minibatch(&mut rng_b, n, &mut mb);
        assert_minibatch_matches_refs(&mb, &refs, &format!("balanced n={n}"));
        assert_eq!(
            rng_a.gen::<u64>(),
            rng_b.gen::<u64>(),
            "balanced n={n}: rng"
        );
    }
}

fn make_episodes(rng: &mut StdRng, n: usize, cols: usize) -> Vec<EpisodeSample> {
    (0..n)
        .map(|i| EpisodeSample {
            // Varying lengths, including an empty episode (crashed lane).
            steps: (0..(i % 4))
                .map(|t| (Matrix::xavier(2, cols, rng), t % 2))
                .collect(),
            episode_return: rng.gen::<f32>() * 2.0 - 1.0,
        })
        .collect()
}

#[test]
fn pg_batched_update_matches_scalar_reference_bitwise() {
    for kind in KINDS {
        for encoding in [ActionEncoding::TwoHead, ActionEncoding::OrdinalInput] {
            let mut batched = PgAgent::new(tiny_net(kind, encoding, 43), PgConfig::default());
            let mut scalar = batched.clone();
            let mut rng = StdRng::seed_from_u64(47);
            for step in 0..3 {
                let eps = make_episodes(&mut rng, 5 + step, STATE_COLS);
                let lb = batched.train_episodes(&eps);
                let ls = scalar.train_episodes_scalar(&eps);
                assert_eq!(
                    lb.to_bits(),
                    ls.to_bits(),
                    "{kind:?}/{encoding:?} step {step}: loss {lb} vs {ls}"
                );
                assert_nets_bitwise_eq(
                    &batched.net,
                    &scalar.net,
                    &format!("{kind:?}/{encoding:?} step {step}"),
                );
                assert_eq!(
                    batched.baseline().to_bits(),
                    scalar.baseline().to_bits(),
                    "{kind:?}/{encoding:?} step {step}: baseline"
                );
            }
        }
    }
}

#[test]
fn pg_sharded_update_matches_unsharded_bitwise() {
    for kind in KINDS {
        for workers in [2usize, 3, 8] {
            let mut unsharded = PgAgent::new(
                tiny_net(kind, ActionEncoding::TwoHead, 53),
                PgConfig::default(),
            );
            let mut sharded = unsharded.clone();
            let mut rng = StdRng::seed_from_u64(59);
            for step in 0..3 {
                let eps = make_episodes(&mut rng, 6, 3);
                let lu = unsharded.train_episodes(&eps);
                let lw = sharded.train_episodes_sharded(&eps, workers);
                assert_eq!(
                    lu.to_bits(),
                    lw.to_bits(),
                    "{kind:?} W={workers} step {step}: loss {lu} vs {lw}"
                );
                assert_nets_bitwise_eq(
                    &unsharded.net,
                    &sharded.net,
                    &format!("{kind:?} W={workers} step {step}"),
                );
            }
        }
    }
}
