//! Steady-state allocation regression pin for the batched DQN update
//! (PR 9 tentpole): once the agent's retained buffers — mini-batch
//! row-stacks, forward/backward caches, gradient accumulators, Adam
//! moments — are warmed by two identically-shaped updates, a third
//! update must not touch the allocator at all.
//!
//! This test must stay in its own integration-test binary so no
//! concurrently running test shares its address space, and the counting
//! window is gated by a **thread-local** flag: the `#[global_allocator]`
//! sees every thread in the process — including the libtest harness
//! thread, which allocates at its own pace while the test body runs —
//! so only the test thread's allocations may count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use mirage_nn::foundation::FoundationKind;
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::TransformerConfig;
use mirage_rl::{
    ActionEncoding, DqnAgent, DqnConfig, DualHeadConfig, DualHeadNet, Experience, MiniBatch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct CountingAlloc;

thread_local! {
    // Const-initialized so reading it from inside the allocator never
    // triggers a lazy TLS initialization (which could itself allocate).
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// True only on the thread that armed the counter — `try_with` so
/// allocations during TLS teardown never panic inside the allocator.
fn counting() -> bool {
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_batched_update_does_not_allocate() {
    let net = DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: 3,
            seq_len: 2,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 7,
    });
    let mut agent = DqnAgent::new(
        net,
        DqnConfig {
            gamma: 0.9,
            // Far enough out that no target-net clone lands inside the
            // measured window (syncing allocates a fresh network).
            target_sync: 1000,
            ..DqnConfig::default()
        },
    );

    let mut rng = StdRng::seed_from_u64(11);
    let batch: Vec<Experience> = (0..8)
        .map(|i| {
            let state = Matrix::xavier(2, 3, &mut rng);
            let reward = rng.gen::<f32>() - 0.5;
            if i % 3 == 0 {
                Experience::terminal(state, i % 2, reward)
            } else {
                Experience::step(state, i % 2, reward, Matrix::xavier(2, 3, &mut rng))
            }
        })
        .collect();
    let refs: Vec<&Experience> = batch.iter().collect();
    let mut mb = MiniBatch::new();
    mb.assemble_refs(&refs);

    // Two warm-up updates grow every retained buffer to the batch shape
    // (including Adam's lazily-created moment matrices on the first).
    agent.train_minibatch(&mb);
    agent.train_minibatch(&mb);

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    let loss = agent.train_minibatch(&mb);
    COUNTING.with(|c| c.set(false));
    let n = ALLOCS.load(Ordering::SeqCst);

    assert!(loss.is_finite(), "update still trains: loss {loss}");
    assert_eq!(n, 0, "steady-state batched update allocated {n} times");
}
