//! Property-based tests for the RL machinery.

use mirage_nn::foundation::FoundationKind;
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::TransformerConfig;
use mirage_rl::{
    ActionEncoding, DualHeadConfig, DualHeadNet, EpisodeSample, Experience, PgAgent, PgConfig,
    ReplayBuffer,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_net(seed: u64) -> DualHeadNet {
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: 3,
            seq_len: 2,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed,
    })
}

proptest! {
    /// The replay buffer never exceeds capacity and always retains the
    /// most recent item.
    #[test]
    fn replay_capacity_invariant(capacity in 1usize..64, pushes in 1usize..200) {
        let mut rb = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            rb.push(Experience::terminal(Matrix::zeros(1, 1), 0, i as f32));
        }
        prop_assert_eq!(rb.len(), pushes.min(capacity));
        let rewards: Vec<f32> = rb.iter().map(|e| e.reward).collect();
        prop_assert!(rewards.contains(&((pushes - 1) as f32)), "newest item must survive");
    }

    /// Sampling returns exactly n items, all from the buffer.
    #[test]
    fn replay_sampling_total(pushes in 1usize..50, n in 1usize..100, seed in 0u64..1000) {
        let mut rb = ReplayBuffer::new(64);
        for i in 0..pushes {
            rb.push(Experience::terminal(Matrix::zeros(1, 1), i % 2, i as f32));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = rb.sample(&mut rng, n);
        prop_assert_eq!(batch.len(), n);
        for e in batch {
            prop_assert!((e.reward as usize) < pushes);
        }
    }

    /// Action probabilities are a valid distribution for any state and any
    /// parameter seed.
    #[test]
    fn action_probs_are_distributions(
        seed in 0u64..500,
        state_vals in prop::collection::vec(-5.0f32..5.0, 6),
    ) {
        let net = tiny_net(seed);
        let state = Matrix::from_vec(2, 3, state_vals);
        let p = net.action_probs(&state);
        prop_assert!(p[0] >= 0.0 && p[1] >= 0.0);
        prop_assert!((p[0] + p[1] - 1.0).abs() < 1e-5);
        // Q values finite for both encodings of the same state.
        let (q, _) = net.q_forward(&state);
        prop_assert!(q[0].is_finite() && q[1].is_finite());
    }

    /// PG action sampling frequency tracks the policy distribution.
    #[test]
    fn pg_sampling_matches_probs(seed in 0u64..100) {
        let mut agent = PgAgent::new(tiny_net(seed), PgConfig::default());
        let state = Matrix::zeros(2, 3);
        let p = agent.net.action_probs(&state);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00);
        let n = 600;
        let ones: usize = (0..n).map(|_| agent.act(&state, &mut rng)).sum();
        let freq = ones as f32 / n as f32;
        prop_assert!((freq - p[1]).abs() < 0.09, "freq {freq} vs p {}", p[1]);
    }

    /// A REINFORCE update with positive advantage raises the probability
    /// of the taken action (the policy-gradient direction).
    #[test]
    fn pg_update_moves_probability_toward_rewarded_action(
        seed in 0u64..200,
        action in 0usize..2,
    ) {
        let mut agent = PgAgent::new(tiny_net(seed), PgConfig {
            lr: 1e-2,
            entropy_coef: 0.0,
            ..PgConfig::default()
        });
        let state = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.1);
        let p_before = agent.net.action_probs(&state)[action];
        // Two-episode batch: rewarded action (return 1) vs the other
        // action (return −1) → positive advantage for `action`.
        let eps = vec![
            EpisodeSample { steps: vec![(state.clone(), action)], episode_return: 1.0 },
            EpisodeSample { steps: vec![(state.clone(), 1 - action)], episode_return: -1.0 },
        ];
        agent.train_episodes(&eps);
        let p_after = agent.net.action_probs(&state)[action];
        prop_assert!(
            p_after > p_before - 1e-6,
            "p({action}) fell from {p_before} to {p_after}"
        );
    }
}
