//! Tick-driven reference simulator.
//!
//! Stands in for the "standard Slurm simulator" ([3, 44] in the paper) that
//! the fast simulator is validated against in §5.2. It models the cadence
//! of a production `slurmctld`:
//!
//! * the **main scheduling pass** (strict priority order, no backfill) runs
//!   every `sched_interval` seconds,
//! * the **backfill pass** runs every `backfill_interval` seconds,
//! * job starts therefore happen only on scheduler ticks, even though
//!   completions free nodes at their exact instants.
//!
//! Walking every tick makes it deliberately slower than the event-driven
//! [`crate::Simulator`] — the overhead gap is part of the §5.2 claim
//! (3–26× in the paper).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use mirage_trace::faults::NodeFaultEvent;
use mirage_trace::{JobRecord, DAY};
use serde::{Deserialize, Serialize};

use crate::admission::{prepare_admission, RecentStarts};
use crate::backfill::{plan_schedule, BackfillPolicy, PendingView};
use crate::fault::{EvictionLog, FaultModel, FaultStats, JobFaults, RetryPolicy};
use crate::hetero::{scale_runtime, HeteroModel, HeteroStats};
use crate::metrics::{ServiceUsage, SimMetrics};
use crate::priority::{priority, FairshareTracker, PriorityWeights};
use crate::simulator::JobStatus;
use crate::snapshot::{ClusterSnapshot, QueuedJobView, RunningJobView};

/// Reference simulator cadence configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceConfig {
    /// Nodes in the partition.
    pub nodes: u32,
    /// Multifactor priority weights (shared with the fast simulator).
    pub weights: PriorityWeights,
    /// Main scheduling pass cadence, seconds (Slurm `sched_interval`).
    pub sched_interval: i64,
    /// Backfill pass cadence, seconds (Slurm `bf_interval`).
    pub backfill_interval: i64,
    /// Backfill flavor used by the backfill pass.
    pub backfill: BackfillPolicy,
    /// Simulation tick, seconds. Starts happen only on ticks.
    pub tick: i64,
    /// Fault injection (same model — and for the same seed, the same
    /// crash tape — as the fast simulator's `SimConfig::faults`).
    #[serde(default)]
    pub faults: FaultModel,
    /// How evicted / failed jobs re-enter the queue.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Heterogeneous node pools and placement-sensitive contention (same
    /// model — and for the same seed, the same slowdown draws — as the
    /// fast simulator's `SimConfig::hetero`).
    #[serde(default)]
    pub hetero: HeteroModel,
}

impl ReferenceConfig {
    /// Production-like defaults: 30 s ticks, 60 s main pass, 120 s backfill.
    pub fn new(nodes: u32) -> Self {
        Self {
            nodes,
            weights: PriorityWeights::default(),
            sched_interval: 60,
            backfill_interval: 120,
            backfill: BackfillPolicy::default(),
            tick: 30,
            faults: FaultModel::none(),
            retry: RetryPolicy::default(),
            hetero: HeteroModel::none(),
        }
    }

    /// Rejects configurations that cannot run a sound tick-driven
    /// simulation: an empty partition, non-positive cadences, or
    /// fault/retry fields their own `validate()`s reject.
    pub fn validate(&self) -> Result<(), crate::fault::SimConfigError> {
        use crate::fault::SimConfigError;
        if self.nodes == 0 {
            return Err(SimConfigError {
                field: "nodes",
                value: "0".to_string(),
                reason: "partition needs at least one node",
            });
        }
        for (field, v) in [
            ("tick", self.tick),
            ("sched_interval", self.sched_interval),
            ("backfill_interval", self.backfill_interval),
        ] {
            if v <= 0 {
                return Err(SimConfigError {
                    field,
                    value: v.to_string(),
                    reason: "cadence must be positive",
                });
            }
        }
        self.faults.validate()?;
        self.hetero.validate(self.nodes)?;
        self.retry.validate()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefStatus {
    Future,
    Pending,
    Running { start: i64 },
    Done,
    Rejected,
    Failed { start: i64, end: i64 },
}

/// Tick-driven Slurm simulator used as the fidelity baseline.
#[derive(Debug)]
pub struct ReferenceSimulator {
    cfg: ReferenceConfig,
    now: i64,
    free_nodes: u32,
    /// Per-pool free-node counts (empty on a homogeneous partition).
    pool_free: Vec<u32>,
    hetero_stats: HeteroStats,
    /// Running jobs whose current placement drew a slowdown.
    contended_running: u32,
    jobs: Vec<JobRecord>,
    status: Vec<RefStatus>,
    /// Per-job index into `running` while the job runs (kept current by
    /// swap-remove fixups, mirroring the fast simulator's stored slot).
    run_slot: Vec<usize>,
    arrivals: BinaryHeap<Reverse<(i64, usize)>>,
    /// `(end, idx, epoch, is_failure)`: the epoch (attempt number at push)
    /// drops stale entries for evicted attempts; `is_failure` marks a
    /// transient mid-run death instead of a clean completion.
    completions: BinaryHeap<Reverse<(i64, usize, u32, bool)>>,
    /// Time-sorted crash/recovery tape plus a cursor into it.
    node_events: Vec<NodeFaultEvent>,
    next_node_event: usize,
    down_nodes: u32,
    fault_stats: FaultStats,
    evictions_log: EvictionLog,
    /// Per-job parallel ledgers (arena-indexed like `status`).
    attempt: Vec<u32>,
    evicted_at: Vec<i64>,
    job_faults_v: Vec<JobFaults>,
    /// Per-job pool allocations while running (empty vectors on a
    /// homogeneous partition).
    pool_alloc: Vec<Vec<u32>>,
    /// Whether the job's current attempt drew a contention slowdown.
    slowed: Vec<bool>,
    pending: Vec<usize>,
    running: Vec<usize>, // arena indices of running jobs (<= nodes entries)
    id_map: HashMap<u64, usize>,
    next_id: u64,
    fairshare: FairshareTracker,
    busy_node_seconds: f64,
    first_submit: Option<i64>,
    rejected: usize,
    last_sched: i64,
    last_backfill: i64,
    recent_starts: RecentStarts,
    /// Arena indices of done jobs, kept `(end, id)`-sorted incrementally.
    completed_order: Vec<usize>,
}

impl ReferenceSimulator {
    /// Creates an idle cluster at time 0. A non-`none` fault model lays
    /// out its full crash/recovery tape up front (identical to the tape
    /// the fast simulator derives from the same model and seed).
    pub fn new(cfg: ReferenceConfig) -> Self {
        let free = cfg.nodes;
        let node_events = cfg.faults.node_schedule(cfg.nodes);
        let pool_free = if cfg.hetero.is_none() {
            Vec::new()
        } else {
            cfg.hetero.pool_totals()
        };
        Self {
            cfg,
            now: 0,
            free_nodes: free,
            pool_free,
            hetero_stats: HeteroStats::default(),
            contended_running: 0,
            jobs: Vec::new(),
            status: Vec::new(),
            run_slot: Vec::new(),
            arrivals: BinaryHeap::new(),
            completions: BinaryHeap::new(),
            node_events,
            next_node_event: 0,
            down_nodes: 0,
            fault_stats: FaultStats::default(),
            evictions_log: EvictionLog::default(),
            attempt: Vec::new(),
            evicted_at: Vec::new(),
            job_faults_v: Vec::new(),
            pool_alloc: Vec::new(),
            slowed: Vec::new(),
            pending: Vec::new(),
            running: Vec::new(),
            id_map: HashMap::new(),
            next_id: 1,
            fairshare: FairshareTracker::new(),
            busy_node_seconds: 0.0,
            first_submit: None,
            rejected: 0,
            // "Long ago" without risking i64 overflow in cadence checks.
            last_sched: i64::MIN / 4,
            last_backfill: i64::MIN / 4,
            recent_starts: RecentStarts::default(),
            completed_order: Vec::new(),
        }
    }

    /// Returns to an idle cluster at time 0 with the same configuration.
    pub fn reset(&mut self) {
        *self = ReferenceSimulator::new(self.cfg.clone());
    }

    /// Loads future arrivals. Ids are preserved when unique, otherwise
    /// reassigned (shared admission logic with the fast simulator).
    pub fn load_trace(&mut self, jobs: &[JobRecord]) {
        for j in jobs {
            self.insert_future(j.clone());
        }
    }

    /// Submits a job *now* (the agent-facing call): the job's submit time
    /// is overridden to the current instant. Returns the id under which
    /// the simulator tracks it.
    pub fn submit(&mut self, mut job: JobRecord) -> u64 {
        job.submit = self.now;
        self.insert_future(job)
    }

    fn insert_future(&mut self, mut job: JobRecord) -> u64 {
        let (id, submit) = prepare_admission(
            &mut job,
            self.now,
            &self.id_map,
            &mut self.next_id,
            &mut self.first_submit,
        );
        let idx = self.jobs.len();
        self.jobs.push(job);
        self.status.push(RefStatus::Future);
        self.run_slot.push(usize::MAX);
        self.attempt.push(0);
        self.evicted_at.push(0);
        self.job_faults_v.push(JobFaults::default());
        self.pool_alloc.push(Vec::new());
        self.slowed.push(false);
        self.id_map.insert(id, idx);
        self.arrivals.push(Reverse((submit, idx)));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> i64 {
        self.now
    }

    /// Idle node count.
    pub fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Partition size.
    pub fn total_nodes(&self) -> u32 {
        self.cfg.nodes
    }

    /// Nodes physically available right now (total minus crashed).
    pub fn available_nodes(&self) -> u32 {
        self.cfg.nodes - self.down_nodes
    }

    /// Nodes currently crashed.
    pub fn down_nodes(&self) -> u32 {
        self.down_nodes
    }

    /// Fault evictions within the trailing `window` seconds.
    pub fn recent_evictions(&self, window: i64) -> u32 {
        self.evictions_log.count(self.now, window)
    }

    /// Aggregate fault counters of the run so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Per-pool free-node counts (empty on a homogeneous partition).
    pub fn pool_free(&self) -> Vec<u32> {
        self.pool_free.clone()
    }

    /// Per-pool node totals (empty on a homogeneous partition).
    pub fn pool_total(&self) -> Vec<u32> {
        if self.cfg.hetero.is_none() {
            Vec::new()
        } else {
            self.cfg.hetero.pool_totals()
        }
    }

    /// Aggregate heterogeneity counters of the run so far.
    pub fn hetero_stats(&self) -> HeteroStats {
        self.hetero_stats
    }

    /// Running jobs whose current placement drew a contention slowdown.
    pub fn contended_running(&self) -> u32 {
        self.contended_running
    }

    /// Per-job fault ledger by id (zero for unknown ids and untouched jobs).
    pub fn job_faults(&self, id: u64) -> JobFaults {
        self.id_map
            .get(&id)
            .map_or_else(JobFaults::default, |&i| self.job_faults_v[i])
    }

    /// Simulator configuration.
    pub fn config(&self) -> &ReferenceConfig {
        &self.cfg
    }

    /// Lifecycle status of a job by id, in the fast simulator's terms.
    pub fn job_status(&self, id: u64) -> Option<JobStatus> {
        let &idx = self.id_map.get(&id)?;
        Some(match self.status[idx] {
            RefStatus::Future => JobStatus::Future,
            RefStatus::Pending => JobStatus::Pending,
            RefStatus::Running { start } => JobStatus::Running { start },
            RefStatus::Done => JobStatus::Completed {
                start: self.jobs[idx].start.expect("done jobs have a start"),
                end: self.jobs[idx].end.expect("done jobs have an end"),
            },
            RefStatus::Rejected => JobStatus::Rejected,
            RefStatus::Failed { start, end } => JobStatus::Failed { start, end },
        })
    }

    /// Observable cluster state at the current instant.
    pub fn sample(&self) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::default();
        self.sample_into(&mut snap);
        snap
    }

    /// Observable cluster state written into a caller-provided snapshot,
    /// reusing its `queued`/`running` vectors (same contract as
    /// [`crate::Simulator::sample_into`]).
    pub fn sample_into(&self, out: &mut ClusterSnapshot) {
        out.now = self.now;
        out.free_nodes = self.free_nodes;
        out.total_nodes = self.cfg.nodes;
        out.down_nodes = self.down_nodes;
        out.recent_evictions = self.evictions_log.count(self.now, DAY);
        out.pool_free.clear();
        out.pool_total.clear();
        out.contended_running = 0;
        if !self.cfg.hetero.is_none() {
            out.pool_free.extend_from_slice(&self.pool_free);
            out.pool_total
                .extend(self.cfg.hetero.pools.iter().map(|p| p.nodes));
            out.contended_running = self.contended_running;
        }
        out.queued.clear();
        out.queued.extend(self.pending.iter().map(|&i| {
            let r = &self.jobs[i];
            QueuedJobView {
                id: r.id,
                nodes: r.nodes,
                submit: r.submit,
                age: self.now - r.submit,
                timelimit: r.timelimit,
                user: r.user,
            }
        }));
        out.running.clear();
        out.running.extend(self.running.iter().map(|&i| {
            let RefStatus::Running { start } = self.status[i] else {
                unreachable!("running list holds only running jobs");
            };
            let r = &self.jobs[i];
            RunningJobView {
                id: r.id,
                nodes: r.nodes,
                start,
                elapsed: self.now - start,
                timelimit: r.timelimit,
                user: r.user,
            }
        }));
    }

    /// Advances simulated time by `dt` seconds (non-positive `dt` is a
    /// no-op).
    pub fn step(&mut self, dt: i64) {
        if dt <= 0 {
            return;
        }
        let target = self.now + dt;
        self.run_until(target);
    }

    /// Whether any work remains (future, queued or running).
    pub fn is_active(&self) -> bool {
        !self.arrivals.is_empty() || !self.completions.is_empty() || !self.pending.is_empty()
    }

    /// Mean queue wait of jobs that *started* within the trailing `window`
    /// seconds; `None` if nothing started in the window.
    pub fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        self.recent_starts.avg(self.now, window)
    }

    /// Runs tick-by-tick until `t_end`.
    pub fn run_until(&mut self, t_end: i64) {
        while self.now < t_end {
            let next = (self.now + self.cfg.tick).min(t_end);
            self.advance_tick(next);
        }
    }

    /// Runs until all loaded jobs are done or rejected.
    pub fn run_to_completion(&mut self) {
        while !self.arrivals.is_empty() || !self.completions.is_empty() || !self.pending.is_empty()
        {
            let next = self.now + self.cfg.tick;
            self.advance_tick(next);
        }
    }

    fn advance_tick(&mut self, tick_end: i64) {
        // Free nodes at exact completion instants (accurate utilization and
        // JCT), but defer any new starts to the tick boundary.
        while let Some(&Reverse((t, idx, epoch, failed))) = self.completions.peek() {
            if t > tick_end {
                break;
            }
            self.completions.pop();
            // Evictions strand the old attempt's heap entry; the epoch
            // stamp identifies and drops it.
            let RefStatus::Running { start } = self.status[idx] else {
                continue;
            };
            if self.attempt[idx] != epoch {
                continue;
            }
            self.clock_to(t);
            if failed {
                // Transient mid-run death: evict and maybe retry.
                self.fault_stats.job_failures += 1;
                self.evict_running(idx, t);
                continue;
            }
            if self.attempt[idx] > 1 {
                self.fault_stats.retry_successes += 1;
            }
            self.status[idx] = RefStatus::Done;
            self.jobs[idx].start = Some(start);
            self.jobs[idx].end = Some(t);
            self.free_nodes += self.jobs[idx].nodes;
            self.release_pools(idx);
            // O(1) removal via the stored running slot (mirrors the fast
            // simulator).
            self.unlink_running(idx);
            // Keep the completion list `(end, id)`-sorted incrementally.
            let id = self.jobs[idx].id;
            self.completed_order.push(idx);
            let mut i = self.completed_order.len() - 1;
            while i > 0 {
                let prev = self.completed_order[i - 1];
                if self.jobs[prev].end == Some(t) && self.jobs[prev].id > id {
                    self.completed_order.swap(i - 1, i);
                    i -= 1;
                } else {
                    break;
                }
            }
            let consumed = f64::from(self.jobs[idx].nodes) * (t - start) as f64;
            self.fairshare.record(self.jobs[idx].user, consumed);
        }
        // Crash/recovery tape entries inside this tick. Running them after
        // the tick's completions is a deliberate coarsening (ticks are the
        // reference's resolution anyway): a job completing inside the same
        // tick as a crash escapes eviction.
        while self.next_node_event < self.node_events.len()
            && self.node_events[self.next_node_event].time <= tick_end
        {
            let ev = self.node_events[self.next_node_event];
            self.next_node_event += 1;
            self.clock_to(ev.time);
            if ev.up {
                self.fault_stats.node_recoveries += 1;
                debug_assert!(self.down_nodes > 0, "recovery without a crash");
                self.down_nodes -= 1;
                self.free_nodes += 1;
                if !self.cfg.hetero.is_none() {
                    let p = self.cfg.hetero.pool_of_node(ev.node);
                    self.pool_free[p] += 1;
                }
            } else {
                self.fault_stats.node_crashes += 1;
                self.down_nodes += 1;
                if !self.cfg.hetero.is_none() {
                    // Pool-local crash (same rule as the fast simulator):
                    // the crashed node's pool absorbs it or gives up its
                    // most recently started job.
                    let p = self.cfg.hetero.pool_of_node(ev.node);
                    if self.pool_free[p] == 0 {
                        let victim = self
                            .running
                            .iter()
                            .copied()
                            .filter(|&i| self.pool_alloc[i].get(p).is_some_and(|&c| c > 0))
                            .max_by_key(|&i| match self.status[i] {
                                RefStatus::Running { start } => (start, self.jobs[i].id),
                                _ => unreachable!("running list holds only running jobs"),
                            })
                            .expect("crashed pool fully busy but hosts no job");
                        self.evict_running(victim, ev.time);
                    }
                    self.pool_free[p] -= 1;
                    self.free_nodes -= 1;
                } else if self.free_nodes > 0 {
                    self.free_nodes -= 1;
                } else {
                    // Same LIFO victim rule as the fast simulator: evict
                    // the most recently started running job.
                    let victim = self
                        .running
                        .iter()
                        .copied()
                        .max_by_key(|&i| match self.status[i] {
                            RefStatus::Running { start } => (start, self.jobs[i].id),
                            _ => unreachable!("running list holds only running jobs"),
                        })
                        .expect("no free nodes and nothing running on a crash");
                    self.evict_running(victim, ev.time);
                    self.free_nodes -= 1;
                }
            }
        }
        while let Some(&Reverse((t, idx))) = self.arrivals.peek() {
            if t > tick_end {
                break;
            }
            self.arrivals.pop();
            self.clock_to(t);
            if self.jobs[idx].nodes > self.cfg.nodes {
                self.status[idx] = RefStatus::Rejected;
                self.rejected += 1;
            } else {
                self.status[idx] = RefStatus::Pending;
                self.pending.push(idx);
            }
        }
        self.clock_to(tick_end);

        let run_main = self.now - self.last_sched >= self.cfg.sched_interval;
        let run_bf = self.now - self.last_backfill >= self.cfg.backfill_interval;
        if run_main {
            self.last_sched = self.now;
            self.schedule(BackfillPolicy::None);
        }
        if run_bf {
            self.last_backfill = self.now;
            self.schedule(self.cfg.backfill);
        }
    }

    fn clock_to(&mut self, t: i64) {
        if t <= self.now {
            return;
        }
        let dt = (t - self.now) as f64;
        self.busy_node_seconds +=
            f64::from(self.cfg.nodes - self.free_nodes - self.down_nodes) * dt;
        self.now = t;
    }

    /// Returns a job's pool allocation to the per-pool free counters and
    /// clears its contention mark. No-op on a homogeneous partition.
    fn release_pools(&mut self, idx: usize) {
        if self.cfg.hetero.is_none() {
            return;
        }
        for (c, f) in self.pool_alloc[idx]
            .iter_mut()
            .zip(self.pool_free.iter_mut())
        {
            *f += *c;
            *c = 0;
        }
        if self.slowed[idx] {
            self.contended_running -= 1;
            self.slowed[idx] = false;
        }
    }

    /// O(1) removal from the running list via the stored slot index.
    fn unlink_running(&mut self, idx: usize) {
        let slot = self.run_slot[idx];
        debug_assert_eq!(self.running[slot], idx, "stale running slot");
        self.running.swap_remove(slot);
        if let Some(&moved) = self.running.get(slot) {
            self.run_slot[moved] = slot;
        }
    }

    /// Tears a running job down at `t`: frees its nodes, charges the
    /// partial run to fairshare, then re-queues it under the retry policy
    /// or fails it terminally — the tick-driven twin of the fast
    /// simulator's eviction path.
    fn evict_running(&mut self, idx: usize, t: i64) {
        let RefStatus::Running { start } = self.status[idx] else {
            unreachable!("evicting a non-running job");
        };
        self.free_nodes += self.jobs[idx].nodes;
        self.release_pools(idx);
        let consumed = f64::from(self.jobs[idx].nodes) * (t - start) as f64;
        self.fairshare.record(self.jobs[idx].user, consumed);
        self.unlink_running(idx);
        self.job_faults_v[idx].evictions += 1;
        self.evicted_at[idx] = t;
        self.fault_stats.evictions += 1;
        self.evictions_log.record(t);
        let attempt = self.attempt[idx];
        if self.cfg.retry.allows(attempt) {
            self.fault_stats.retries += 1;
            self.status[idx] = RefStatus::Future;
            let delay = self.cfg.retry.delay(attempt);
            self.arrivals.push(Reverse((t + delay, idx)));
        } else {
            self.fault_stats.failed_jobs += 1;
            self.status[idx] = RefStatus::Failed { start, end: t };
            self.jobs[idx].start = Some(start);
            self.jobs[idx].end = Some(t);
        }
    }

    fn schedule(&mut self, policy: BackfillPolicy) {
        if self.pending.is_empty() {
            return;
        }
        let capacity_ns = f64::from(self.cfg.nodes) * self.cfg.weights.fairshare_halflife as f64;
        self.fairshare
            .decay_to(self.now, self.cfg.weights.fairshare_halflife);
        let w = self.cfg.weights;
        let mut order = self.pending.clone();
        let mut prio: HashMap<usize, f64> = HashMap::with_capacity(order.len());
        for &i in &order {
            let r = &self.jobs[i];
            let usage = self.fairshare.normalized_usage(r.user, capacity_ns);
            prio.insert(
                i,
                priority(&w, self.now - r.submit, r.nodes, self.cfg.nodes, usage),
            );
        }
        order.sort_by(|&a, &b| {
            prio[&b]
                .partial_cmp(&prio[&a])
                .unwrap()
                .then(self.jobs[a].submit.cmp(&self.jobs[b].submit))
                .then(self.jobs[a].id.cmp(&self.jobs[b].id))
        });
        let views: Vec<PendingView> = order
            .iter()
            .map(|&i| PendingView {
                nodes: self.jobs[i].nodes,
                timelimit: self.jobs[i].timelimit,
            })
            .collect();
        let releases: Vec<(i64, u32)> = self
            .running
            .iter()
            .map(|&i| {
                let RefStatus::Running { start } = self.status[i] else {
                    unreachable!("running list holds only running jobs");
                };
                // The scheduler only knows the *limit*, not the real
                // runtime.
                (start + self.jobs[i].timelimit, self.jobs[i].nodes)
            })
            .collect();
        // Crashed nodes are invisible to the planner until they recover
        // (same rule as the fast simulator).
        let starts = plan_schedule(
            &views,
            self.free_nodes,
            self.cfg.nodes - self.down_nodes,
            self.now,
            &releases,
            policy,
        );
        let started: Vec<usize> = starts.iter().map(|&s| order[s]).collect();
        for &idx in &started {
            self.status[idx] = RefStatus::Running { start: self.now };
            self.run_slot[idx] = self.running.len();
            self.running.push(idx);
            self.recent_starts
                .record(self.now, self.now - self.jobs[idx].submit);
            self.free_nodes -= self.jobs[idx].nodes;
            self.attempt[idx] += 1;
            if self.attempt[idx] > 1 {
                // Downtime the eviction inflicted: eviction → restart.
                self.job_faults_v[idx].downtime += self.now - self.evicted_at[idx];
            }
            let mut run = self.jobs[idx].runtime.min(self.jobs[idx].timelimit);
            if !self.cfg.hetero.is_none() {
                // Same placement model (and the same slowdown draws, being
                // a pure hash of id/attempt) as the fast simulator.
                let placed = self.cfg.hetero.place(
                    &mut self.pool_free,
                    &self.jobs[idx].pool,
                    self.jobs[idx].nodes,
                    self.jobs[idx].id,
                    self.attempt[idx],
                    &mut self.pool_alloc[idx],
                );
                self.hetero_stats.record(&placed);
                self.slowed[idx] = placed.scale > 1.0;
                if self.slowed[idx] {
                    self.contended_running += 1;
                }
                run = scale_runtime(run, placed.scale).min(self.jobs[idx].timelimit);
            }
            let epoch = self.attempt[idx];
            // The transient-failure draw is a pure hash of (id, attempt),
            // so both simulators reach the same verdict for the same
            // attempt even though their start instants differ.
            match self.cfg.faults.job_fails(self.jobs[idx].id, epoch) {
                Some(frac) if run > 0 => {
                    let at = ((run as f64 * frac).ceil() as i64).clamp(1, run);
                    self.completions
                        .push(Reverse((self.now + at, idx, epoch, true)));
                }
                _ => {
                    self.completions
                        .push(Reverse((self.now + run, idx, epoch, false)));
                }
            }
        }
        self.pending.retain(|i| !started.contains(i));
    }

    /// Completed jobs (start/end filled), ordered by `(end, id)` — a
    /// single pass over the incrementally maintained completion list.
    pub fn completed(&self) -> Vec<JobRecord> {
        self.completed_order
            .iter()
            .map(|&i| self.jobs[i].clone())
            .collect()
    }

    /// Aggregate metrics of the run so far.
    pub fn metrics(&self) -> SimMetrics {
        let completed = self.completed();
        let span = self.now - self.first_submit.unwrap_or(0);
        let mut m = SimMetrics::from_completed(
            &completed,
            self.rejected,
            self.cfg.nodes,
            self.busy_node_seconds,
            span.max(0),
        );
        m.failed_jobs = self.fault_stats.failed_jobs as usize;
        m
    }

    /// Per-user accounting ledger — the tick-driven twin of
    /// `Simulator::user_usage`, over this backend's own pending/running
    /// index lists and completion order.
    pub fn user_usage(&self, user: u32) -> ServiceUsage {
        let mut usage = ServiceUsage::empty(user);
        for &i in &self.pending {
            let r = &self.jobs[i];
            if r.user == user {
                usage.queued += 1;
                usage.queued_nodes += u64::from(r.nodes);
            }
        }
        for &i in &self.running {
            let r = &self.jobs[i];
            if r.user == user {
                usage.running += 1;
                usage.running_nodes += u64::from(r.nodes);
            }
        }
        for &i in &self.completed_order {
            let r = &self.jobs[i];
            if r.user != user {
                continue;
            }
            let start = r.start.expect("done jobs have a start");
            let end = r.end.expect("done jobs have an end");
            usage.completed += 1;
            usage.node_seconds += f64::from(r.nodes) * (end - start) as f64;
            usage.wait_sum += start - r.submit;
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::HOUR;

    fn job(id: u64, submit: i64, nodes: u32, runtime: i64, limit: i64) -> JobRecord {
        JobRecord::new(id, format!("j{id}"), 1, submit, nodes, limit, runtime)
    }

    #[test]
    fn starts_happen_on_ticks_only() {
        let mut s = ReferenceSimulator::new(ReferenceConfig::new(4));
        s.load_trace(&[job(1, 45, 1, HOUR, HOUR)]);
        s.run_to_completion();
        let done = s.completed();
        let start = done[0].start.unwrap();
        // Submitted at t=45; the next main pass tick at/after 45 is 60.
        assert!(start >= 45);
        assert_eq!(start % 30, 0, "starts align to scheduler ticks");
    }

    #[test]
    fn completes_all_jobs_like_fast_sim() {
        let trace: Vec<JobRecord> = (0..20)
            .map(|i| job(i + 1, i as i64 * 600, 1 + (i % 3) as u32, HOUR, 2 * HOUR))
            .collect();
        let mut s = ReferenceSimulator::new(ReferenceConfig::new(4));
        s.load_trace(&trace);
        s.run_to_completion();
        assert_eq!(s.completed().len(), 20);
    }

    #[test]
    fn oversized_rejected() {
        let mut s = ReferenceSimulator::new(ReferenceConfig::new(2));
        s.load_trace(&[job(1, 0, 4, HOUR, HOUR)]);
        s.run_to_completion();
        assert_eq!(s.metrics().rejected_jobs, 1);
    }

    #[test]
    fn agent_surface_matches_fast_simulator_semantics() {
        let mut s = ReferenceSimulator::new(ReferenceConfig::new(4));
        s.step(500);
        assert_eq!(s.now(), 500);
        // Submit overrides the submit time to now and reassigns taken ids.
        let a = s.submit(job(7, 42, 1, HOUR, HOUR));
        let b = s.submit(job(7, 42, 1, HOUR, HOUR));
        assert_eq!(a, 7);
        assert_ne!(b, 7);
        assert!(matches!(
            s.job_status(a),
            Some(JobStatus::Future | JobStatus::Pending)
        ));
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|j| j.submit == 500));
        assert!(matches!(s.job_status(a), Some(JobStatus::Completed { .. })));
        assert!(!s.is_active());
        assert!(s.avg_recent_wait(100 * HOUR).is_some());
        // Reset restores the idle cluster.
        s.reset();
        assert_eq!(s.now(), 0);
        assert_eq!(s.free_nodes(), 4);
        assert!(s.completed().is_empty());
    }

    #[test]
    fn sample_reports_queue_and_running_state() {
        let mut cfg = ReferenceConfig::new(2);
        cfg.tick = 30;
        let mut s = ReferenceSimulator::new(cfg);
        s.load_trace(&[
            job(1, 0, 2, 4 * HOUR, 4 * HOUR),
            job(2, HOUR, 1, HOUR, HOUR),
        ]);
        s.run_until(2 * HOUR);
        let snap = s.sample();
        assert_eq!(snap.now, 2 * HOUR);
        assert_eq!(snap.total_nodes, 2);
        assert_eq!(snap.free_nodes, 0);
        assert_eq!(snap.running.len(), 1);
        assert_eq!(snap.queued.len(), 1);
        assert_eq!(snap.queued[0].age, HOUR);
    }

    #[test]
    fn backfill_happens_while_head_is_blocked() {
        // J1 holds 3 of 4 nodes (limit 4h); J2 (4 nodes) blocks the head.
        // J3 (1 node, short limit) can only start via the backfill pass —
        // and must start while J1 is still running, on a tick boundary.
        let mut cfg = ReferenceConfig::new(4);
        cfg.backfill_interval = 300;
        let mut s = ReferenceSimulator::new(cfg);
        s.load_trace(&[
            job(1, 0, 3, 2 * HOUR, 4 * HOUR),
            job(2, 10, 4, HOUR, 2 * HOUR),
            job(3, 20, 1, HOUR / 4, HOUR / 4),
        ]);
        s.run_to_completion();
        let done = s.completed();
        let j3 = done.iter().find(|j| j.id == 3).unwrap();
        let start = j3.start.unwrap();
        assert!((20..2 * HOUR).contains(&start), "backfilled before J1 ends");
        assert_eq!(start % 30, 0, "starts align to scheduler ticks");
    }

    #[test]
    fn transient_failure_retries_on_tick_cadence() {
        let fm = FaultModel {
            job_fail_prob: 0.5,
            seed: 7,
            ..FaultModel::none()
        };
        let id = (1..500u64)
            .find(|&id| fm.job_fails(id, 1).is_some() && fm.job_fails(id, 2).is_none())
            .expect("some id fails once then succeeds");
        let mut cfg = ReferenceConfig::new(1);
        cfg.faults = fm;
        let mut s = ReferenceSimulator::new(cfg);
        s.load_trace(&[job(id, 0, 1, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done.len(), 1);
        assert!(done[0].end.unwrap() > HOUR, "failed attempt delays the end");
        let stats = s.fault_stats();
        assert_eq!(stats.job_failures, 1);
        assert_eq!(stats.retry_successes, 1);
        assert_eq!(s.job_faults(id).evictions, 1);
        assert!(s.job_faults(id).downtime > 0);
        assert_eq!(s.metrics().failed_jobs, 0);
    }

    #[test]
    fn exhausted_retries_fail_terminally_on_ticks_too() {
        let mut cfg = ReferenceConfig::new(1);
        cfg.faults = FaultModel {
            job_fail_prob: 1.0,
            seed: 3,
            ..FaultModel::none()
        };
        cfg.retry.max_attempts = 2;
        let mut s = ReferenceSimulator::new(cfg);
        s.load_trace(&[job(1, 0, 1, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        assert!(s.completed().is_empty());
        assert!(matches!(s.job_status(1), Some(JobStatus::Failed { .. })));
        assert_eq!(s.fault_stats().failed_jobs, 1);
        assert_eq!(s.metrics().failed_jobs, 1);
    }

    #[test]
    fn node_crashes_evict_and_replay_identically_after_reset() {
        let mut cfg = ReferenceConfig::new(4);
        cfg.faults = FaultModel::severe(11);
        let mut s = ReferenceSimulator::new(cfg);
        let trace: Vec<_> = (0..40u32)
            .map(|i| job(u64::from(i) + 1, i64::from(i) * 600, 2, 3 * HOUR, 4 * HOUR))
            .collect();
        s.load_trace(&trace);
        s.run_to_completion();
        let first = (s.completed(), s.fault_stats(), s.metrics());
        assert!(first.1.node_crashes > 0, "severe model must actually crash");
        s.reset();
        s.load_trace(&trace);
        s.run_to_completion();
        assert_eq!(s.completed(), first.0, "reset replays the same crashes");
        assert_eq!(s.fault_stats(), first.1);
        assert_eq!(s.metrics(), first.2);
    }

    #[test]
    fn fast_pool_shortens_runtimes_on_tick_cadence() {
        use crate::hetero::{HeteroModel, NodePool};
        use mirage_trace::PoolRequest;
        let mut cfg = ReferenceConfig::new(8);
        cfg.hetero = HeteroModel::with_pools(
            vec![NodePool::new("a100", 2, 2.0), NodePool::new("v100", 6, 1.0)],
            0.0,
            1,
        );
        cfg.validate().unwrap();
        let mut s = ReferenceSimulator::new(cfg);
        s.load_trace(&[
            job(1, 0, 2, HOUR, 2 * HOUR).with_pool(PoolRequest::Demand("a100".into())),
            job(2, 0, 2, HOUR, 2 * HOUR).with_pool(PoolRequest::Demand("v100".into())),
        ]);
        s.run_to_completion();
        let done = s.completed();
        let j1 = done.iter().find(|j| j.id == 1).unwrap();
        let j2 = done.iter().find(|j| j.id == 2).unwrap();
        let (s1, s2) = (j1.start.unwrap(), j2.start.unwrap());
        assert_eq!(j1.end, Some(s1 + HOUR / 2), "a100 runs at 2x");
        assert_eq!(j2.end, Some(s2 + HOUR), "v100 is baseline speed");
        assert_eq!(s.pool_free(), vec![2, 6]);
        assert_eq!(s.pool_total(), vec![2, 6]);
        assert_eq!(s.hetero_stats().placements, 2);
        assert_eq!(s.contended_running(), 0);
    }

    #[test]
    fn hetero_contention_replays_identically_after_reset() {
        let mut cfg = ReferenceConfig::new(8);
        cfg.hetero = HeteroModel::balanced(8, 5);
        cfg.faults = FaultModel::severe(11);
        cfg.validate().unwrap();
        let mut s = ReferenceSimulator::new(cfg);
        let trace: Vec<_> = (0..40u32)
            .map(|i| {
                job(
                    u64::from(i) + 1,
                    i64::from(i) * 600,
                    1 + i % 4,
                    3 * HOUR,
                    4 * HOUR,
                )
            })
            .collect();
        s.load_trace(&trace);
        s.run_to_completion();
        let first = (
            s.completed(),
            s.fault_stats(),
            s.hetero_stats(),
            s.metrics(),
        );
        assert!(first.2.slowdowns > 0, "balanced scenario must contend");
        s.reset();
        assert_eq!(s.pool_free(), s.pool_total(), "reset refills the pools");
        s.load_trace(&trace);
        s.run_to_completion();
        assert_eq!(s.completed(), first.0, "reset replays the same placements");
        assert_eq!(s.fault_stats(), first.1);
        assert_eq!(s.hetero_stats(), first.2);
        assert_eq!(s.metrics(), first.3);
    }
}
