//! Low-overhead discrete-event Slurm simulator (§5.2 of the paper).
//!
//! The simulator implements Slurm's core scheduling logic — multifactor
//! priority scheduling with EASY backfilling — behind the three-call API
//! the Mirage agent uses: [`Simulator::sample`], [`Simulator::step`] and
//! [`Simulator::submit`].
//!
//! Two implementations share the same scheduling-plan core
//! ([`backfill::plan_schedule`]):
//!
//! * [`Simulator`] — the fast, event-driven simulator Mirage trains
//!   against. It runs a scheduling pass exactly when an event (arrival or
//!   completion) changes the system, so simulated time leaps between
//!   events. One month of trace replays in well under a minute.
//! * [`reference::ReferenceSimulator`] — a tick-driven stand-in for the
//!   "standard Slurm simulator" the paper validates against: the main
//!   priority pass and the backfill pass run on their own fixed cadences
//!   (as in production `slurmctld`), so jobs start only on scheduler
//!   ticks. It is deliberately slower and is used for the §5.2 fidelity
//!   study ([`fidelity`]).

pub mod backfill;
pub mod event;
pub mod fidelity;
pub mod metrics;
pub mod priority;
pub mod reference;
pub mod simulator;
pub mod snapshot;

pub use backfill::{plan_schedule, BackfillPolicy, PendingView};
pub use fidelity::{compare, FidelityReport};
pub use metrics::SimMetrics;
pub use priority::PriorityWeights;
pub use reference::ReferenceSimulator;
pub use simulator::{JobStatus, SimConfig, Simulator};
pub use snapshot::{ClusterSnapshot, QueuedJobView, RunningJobView};
