//! Low-overhead discrete-event Slurm simulation (§5.2 of the paper),
//! unified behind the [`ClusterBackend`] trait.
//!
//! The Mirage agent drives a cluster through three calls — `submit` a job,
//! `sample` the observable state, `step` simulated time — and the
//! provisioning stack upstream (`mirage-core`) is generic over *any*
//! backend honoring that contract:
//!
//! * [`Simulator`] — the fast event-driven simulator Mirage trains
//!   against. It runs a scheduling pass exactly when an event (arrival or
//!   completion) changes the system, so simulated time leaps between
//!   events. One month of trace replays in well under a minute.
//! * [`ReferenceSimulator`] — a tick-driven stand-in for the "standard
//!   Slurm simulator" the paper validates against: the main priority pass
//!   and the backfill pass run on their own fixed cadences (as in
//!   production `slurmctld`), so jobs start only on scheduler ticks. It is
//!   deliberately slower and anchors the §5.2 fidelity study
//!   ([`fidelity`]).
//! * [`BackendPool`] — N independently seeded backends fanned out over
//!   std threads, for parallel episode collection. Workers are
//!   supervised: a panicking task is caught, its backend rebuilt, and
//!   the task retried under a bounded budget ([`PoolHealth`] counts the
//!   incidents).
//!
//! Both simulators share one scheduling-plan core
//! ([`backfill::plan_schedule`]: multifactor priority + EASY backfill) and
//! are selected *by value* through the builder:
//!
//! ```
//! use mirage_sim::{BackendKind, ClusterBackend, SimConfig};
//!
//! // Event-driven by default; `.backend(BackendKind::Tick)` swaps in the
//! // tick-driven reference without changing any downstream code.
//! let mut backend = SimConfig::builder().nodes(8).seed(42).build();
//! backend.run_until(3_600);
//! assert_eq!(backend.now(), 3_600);
//! assert_eq!(backend.free_nodes(), 8);
//!
//! let mut tick = SimConfig::builder()
//!     .nodes(8)
//!     .backend(BackendKind::Tick)
//!     .build();
//! assert_eq!(tick.total_nodes(), 8);
//! ```

mod admission;

pub mod backend;
pub mod backfill;
pub mod config_io;
pub mod event;
pub mod fault;
pub mod fidelity;
pub mod hetero;
pub mod metrics;
pub mod priority;
pub mod reference;
pub mod simulator;
pub mod snapshot;

pub use backend::{
    AnyBackend, BackendFactory, BackendKind, BackendPool, ClusterBackend, PanicPlan, PoolHealth,
    SimBuilder, MAX_TASK_ATTEMPTS,
};
pub use backfill::{plan_schedule, plan_schedule_into, BackfillPolicy, PendingView, PlanScratch};
pub use config_io::ConfigJsonError;
pub use fault::{EvictionLog, FaultModel, FaultStats, JobFaults, RetryPolicy, SimConfigError};
pub use fidelity::{compare, run_both, run_both_backends, run_timed, FidelityReport};
pub use hetero::{scale_runtime, HeteroModel, HeteroStats, NodePool, Placement};
pub use metrics::{ServiceUsage, SimMetrics};
pub use priority::PriorityWeights;
pub use reference::{ReferenceConfig, ReferenceSimulator};
pub use simulator::{JobStatus, SimConfig, Simulator};
pub use snapshot::{ClusterSnapshot, QueuedJobView, RunningJobView};
