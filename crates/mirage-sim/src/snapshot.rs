//! Cluster state snapshots — what `sample()` hands to the agent.
//!
//! The Mirage state encoder (§4.1) consumes exactly this view: queued-job
//! sizes/ages/limits, running-job sizes/elapsed/limits, and the free-node
//! count. Job-internal state is deliberately absent: the paper treats, e.g.,
//! a training job's epoch progress as private to the user.

use serde::{Deserialize, Serialize};

/// One queued (pending) job as visible to the provisioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedJobView {
    /// Simulator job id.
    pub id: u64,
    /// Requested nodes.
    pub nodes: u32,
    /// Submission instant.
    pub submit: i64,
    /// Seconds spent pending so far.
    pub age: i64,
    /// Requested wall-clock limit.
    pub timelimit: i64,
    /// Owning user.
    pub user: u32,
}

/// One running job as visible to the provisioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunningJobView {
    /// Simulator job id.
    pub id: u64,
    /// Allocated nodes.
    pub nodes: u32,
    /// Dispatch instant.
    pub start: i64,
    /// Seconds running so far.
    pub elapsed: i64,
    /// Requested wall-clock limit.
    pub timelimit: i64,
    /// Owning user.
    pub user: u32,
}

/// Full observable cluster state at one instant.
///
/// `Default` gives an empty snapshot suitable as the reusable buffer for
/// [`crate::ClusterBackend::sample_into`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterSnapshot {
    /// Snapshot instant.
    pub now: i64,
    /// Idle nodes.
    pub free_nodes: u32,
    /// Partition size.
    pub total_nodes: u32,
    /// Nodes currently crashed (invisible to the scheduler until they
    /// recover). 0 without fault injection.
    #[serde(default)]
    pub down_nodes: u32,
    /// Fault evictions recorded in the trailing 24 h. 0 without fault
    /// injection.
    #[serde(default)]
    pub recent_evictions: u32,
    /// Per-pool free-node counts on a heterogeneous partition, in pool
    /// declaration order. Empty on a homogeneous cluster.
    #[serde(default)]
    pub pool_free: Vec<u32>,
    /// Per-pool node totals, aligned with `pool_free`. Empty on a
    /// homogeneous cluster.
    #[serde(default)]
    pub pool_total: Vec<u32>,
    /// Running jobs whose placement drew a contention slowdown (spanning
    /// pools, congested pool, or off-type demand). 0 without
    /// heterogeneity.
    #[serde(default)]
    pub contended_running: u32,
    /// Pending jobs (unordered).
    pub queued: Vec<QueuedJobView>,
    /// Running jobs (unordered).
    pub running: Vec<RunningJobView>,
}

impl ClusterSnapshot {
    /// Nodes currently allocated (crashed nodes hold no allocations).
    pub fn busy_nodes(&self) -> u32 {
        self.total_nodes - self.free_nodes - self.down_nodes
    }

    /// Nodes physically available right now (total minus crashed).
    pub fn available_nodes(&self) -> u32 {
        self.total_nodes - self.down_nodes
    }

    /// Instantaneous utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            f64::from(self.busy_nodes()) / f64::from(self.total_nodes)
        }
    }

    /// Total nodes requested by the queue (demand backlog).
    pub fn queued_nodes(&self) -> u32 {
        self.queued.iter().map(|q| q.nodes).sum()
    }

    /// Fraction of running jobs currently suffering a contention slowdown
    /// — the scalar contention metric exposed to policies and encoders.
    pub fn contention(&self) -> f64 {
        if self.running.is_empty() {
            0.0
        } else {
            f64::from(self.contended_running) / self.running.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let snap = ClusterSnapshot {
            now: 100,
            free_nodes: 2,
            total_nodes: 8,
            down_nodes: 0,
            recent_evictions: 0,
            queued: vec![
                QueuedJobView {
                    id: 1,
                    nodes: 4,
                    submit: 0,
                    age: 100,
                    timelimit: 10,
                    user: 1,
                },
                QueuedJobView {
                    id: 2,
                    nodes: 3,
                    submit: 50,
                    age: 50,
                    timelimit: 10,
                    user: 2,
                },
            ],
            ..ClusterSnapshot::default()
        };
        assert_eq!(snap.busy_nodes(), 6);
        assert!((snap.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(snap.queued_nodes(), 7);
    }

    #[test]
    fn empty_cluster_is_safe() {
        let snap = ClusterSnapshot::default();
        assert_eq!(snap.utilization(), 0.0);
        assert_eq!(snap.queued_nodes(), 0);
        assert_eq!(snap.contention(), 0.0);
    }

    #[test]
    fn down_nodes_shrink_busy_and_available_counts() {
        let snap = ClusterSnapshot {
            now: 0,
            free_nodes: 2,
            total_nodes: 8,
            down_nodes: 3,
            recent_evictions: 1,
            ..ClusterSnapshot::default()
        };
        assert_eq!(snap.available_nodes(), 5);
        assert_eq!(snap.busy_nodes(), 3, "8 total − 2 idle − 3 crashed");
    }

    #[test]
    fn contention_is_the_slowed_share_of_running_jobs() {
        let run = |id| RunningJobView {
            id,
            nodes: 1,
            start: 0,
            elapsed: 10,
            timelimit: 100,
            user: 1,
        };
        let snap = ClusterSnapshot {
            free_nodes: 0,
            total_nodes: 4,
            contended_running: 1,
            pool_free: vec![0, 0],
            pool_total: vec![1, 3],
            running: vec![run(1), run(2), run(3), run(4)],
            ..ClusterSnapshot::default()
        };
        assert!((snap.contention() - 0.25).abs() < 1e-12);
    }
}
