//! Event queue for the discrete-event simulator.
//!
//! Events are ordered by `(time, kind, seq)`: completions before arrivals at
//! the same instant (nodes freed by a finishing job are visible to a job
//! arriving at the same second), with a monotone sequence number as the
//! final deterministic tie-break.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A running job finished; payload is the arena index.
    Completion,
    /// A job entered the queue; payload is the arena index.
    Arrival,
}

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulation timestamp at which the event fires.
    pub time: i64,
    /// Completion or arrival.
    pub kind: EventKind,
    /// Arena index of the affected job.
    pub job: usize,
}

/// Min-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(i64, EventKind, u64, usize)>>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, ev: Event) {
        self.seq += 1;
        self.heap
            .push(Reverse((ev.time, ev.kind, self.seq, ev.job)));
    }

    /// Ensures capacity for at least `cap` outstanding events, so pushes
    /// on the steady-state path never grow the heap.
    pub fn reserve_total(&mut self, cap: usize) {
        if self.heap.capacity() < cap {
            self.heap.reserve(cap - self.heap.len());
        }
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<i64> {
        self.heap.peek().map(|Reverse((t, _, _, _))| *t)
    }

    /// Pops the next event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap
            .pop()
            .map(|Reverse((time, kind, _, job))| Event { time, kind, job })
    }

    /// Number of outstanding events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are outstanding.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 30,
            kind: EventKind::Arrival,
            job: 1,
        });
        q.push(Event {
            time: 10,
            kind: EventKind::Arrival,
            job: 2,
        });
        q.push(Event {
            time: 20,
            kind: EventKind::Arrival,
            job: 3,
        });
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.job).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn completions_fire_before_arrivals_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 10,
            kind: EventKind::Arrival,
            job: 1,
        });
        q.push(Event {
            time: 10,
            kind: EventKind::Completion,
            job: 2,
        });
        assert_eq!(q.pop().unwrap().kind, EventKind::Completion);
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival);
    }

    #[test]
    fn same_key_pops_in_push_order() {
        let mut q = EventQueue::new();
        for j in 0..5 {
            q.push(Event {
                time: 1,
                kind: EventKind::Arrival,
                job: j,
            });
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.job).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Event {
            time: 42,
            kind: EventKind::Completion,
            job: 0,
        });
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.pop().unwrap().time, 42);
        assert!(q.is_empty());
    }
}
