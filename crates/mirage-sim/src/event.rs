//! Event queue for the discrete-event simulator.
//!
//! Events are ordered by `(time, kind, seq)`: the kind order encodes the
//! same-instant semantics (recoveries and completions free capacity before
//! a crash picks its eviction victim, and arrivals observe everything that
//! freed up), with a monotone sequence number as the final deterministic
//! tie-break — so interleaving a fault stream with job events can never
//! perturb the pop order of same-timestamp events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happened. The variant order **is** the same-instant priority:
///
/// 1. [`NodeUp`](EventKind::NodeUp) — a recovering node is usable by
///    everything else firing this instant,
/// 2. [`Completion`](EventKind::Completion) — a job finishing exactly when
///    a node crashes must not be chosen as the eviction victim,
/// 3. [`JobFail`](EventKind::JobFail) — transient mid-run deaths, after
///    clean completions at the same instant,
/// 4. [`NodeDown`](EventKind::NodeDown) — crashes evict from whatever is
///    still running,
/// 5. [`Arrival`](EventKind::Arrival) — arrivals see every node freed at
///    this instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A crashed node recovered; payload is the node index.
    NodeUp,
    /// A running job finished; payload is the arena index.
    Completion,
    /// A running job died mid-run (transient fault); payload is the arena
    /// index.
    JobFail,
    /// A node crashed; payload is the node index.
    NodeDown,
    /// A job entered the queue; payload is the arena index.
    Arrival,
}

/// A scheduled simulator event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Simulation timestamp at which the event fires.
    pub time: i64,
    /// What fires.
    pub kind: EventKind,
    /// Arena index of the affected job, or the node index for
    /// [`EventKind::NodeUp`]/[`EventKind::NodeDown`].
    pub job: usize,
    /// Job attempt number the event was scheduled for (0 for arrivals and
    /// node events). Evicting a job strands its in-flight completion
    /// event; the attempt stamp lets the simulator recognize and drop the
    /// stale event instead of completing a re-queued attempt early.
    pub epoch: u32,
}

impl Event {
    /// A job event with epoch 0 (arrivals, and every pre-fault call site).
    pub fn new(time: i64, kind: EventKind, job: usize) -> Self {
        Self {
            time,
            kind,
            job,
            epoch: 0,
        }
    }
}

/// Heap key: `(time, kind, seq, job, epoch)` — min-popped, so the kind
/// order above plus the monotone `seq` give a total deterministic order.
type EventKey = Reverse<(i64, EventKind, u64, usize, u32)>;

/// Min-ordered event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<EventKey>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, ev: Event) {
        self.seq += 1;
        self.heap
            .push(Reverse((ev.time, ev.kind, self.seq, ev.job, ev.epoch)));
    }

    /// Ensures capacity for at least `cap` outstanding events, so pushes
    /// on the steady-state path never grow the heap.
    pub fn reserve_total(&mut self, cap: usize) {
        if self.heap.capacity() < cap {
            self.heap.reserve(cap - self.heap.len());
        }
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<i64> {
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    /// Pops the next event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap
            .pop()
            .map(|Reverse((time, kind, _, job, epoch))| Event {
                time,
                kind,
                job,
                epoch,
            })
    }

    /// Number of outstanding events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are outstanding.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Event::new(30, EventKind::Arrival, 1));
        q.push(Event::new(10, EventKind::Arrival, 2));
        q.push(Event::new(20, EventKind::Arrival, 3));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.job).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn completions_fire_before_arrivals_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(Event::new(10, EventKind::Arrival, 1));
        q.push(Event::new(10, EventKind::Completion, 2));
        assert_eq!(q.pop().unwrap().kind, EventKind::Completion);
        assert_eq!(q.pop().unwrap().kind, EventKind::Arrival);
    }

    #[test]
    fn same_instant_kinds_pop_in_documented_priority() {
        // Push in scrambled order; the pop order must be exactly the
        // documented same-instant semantics, independent of insertion.
        let kinds = [
            EventKind::Arrival,
            EventKind::NodeDown,
            EventKind::NodeUp,
            EventKind::JobFail,
            EventKind::Completion,
        ];
        let mut q = EventQueue::new();
        for (j, &k) in kinds.iter().enumerate() {
            q.push(Event::new(5, k, j));
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            popped,
            vec![
                EventKind::NodeUp,
                EventKind::Completion,
                EventKind::JobFail,
                EventKind::NodeDown,
                EventKind::Arrival,
            ]
        );
    }

    #[test]
    fn same_key_pops_in_push_order() {
        let mut q = EventQueue::new();
        for j in 0..5 {
            q.push(Event::new(1, EventKind::Arrival, j));
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.job).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fault_stream_cannot_perturb_job_event_ties() {
        // Interleave a fault stream between two same-key job pushes: the
        // job events still pop in their own push order.
        let mut q = EventQueue::new();
        q.push(Event::new(7, EventKind::Arrival, 10));
        q.push(Event::new(7, EventKind::NodeDown, 0));
        q.push(Event::new(7, EventKind::Arrival, 11));
        q.push(Event::new(7, EventKind::NodeUp, 0));
        let order: Vec<_> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.kind, e.job))
            .collect();
        assert_eq!(
            order,
            vec![
                (EventKind::NodeUp, 0),
                (EventKind::NodeDown, 0),
                (EventKind::Arrival, 10),
                (EventKind::Arrival, 11),
            ]
        );
    }

    #[test]
    fn epoch_survives_the_heap_round_trip() {
        let mut q = EventQueue::new();
        q.push(Event {
            time: 3,
            kind: EventKind::Completion,
            job: 9,
            epoch: 2,
        });
        let ev = q.pop().unwrap();
        assert_eq!((ev.job, ev.epoch), (9, 2));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Event::new(42, EventKind::Completion, 0));
        assert_eq!(q.peek_time(), Some(42));
        assert_eq!(q.pop().unwrap().time, 42);
        assert!(q.is_empty());
    }
}
