//! Scheduling-plan core: priority order + EASY backfill.
//!
//! [`plan_schedule`] is a pure function shared by the fast simulator and
//! the reference simulator. Given the pending queue in priority order, the
//! free-node count and the *estimated* release times of running jobs, it
//! decides which pending jobs start right now.
//!
//! The planner follows Slurm semantics:
//!
//! * jobs start strictly in priority order until the first job that does
//!   not fit (the *blocked head*),
//! * EASY backfill then computes the head's **shadow time** — the earliest
//!   instant enough nodes will be free, *assuming running jobs hold their
//!   nodes until their wall-clock limits* — and starts lower-priority jobs
//!   early only if they cannot delay the head: either they finish (by
//!   their own limit) before the shadow time, or they fit in the nodes
//!   left over at the shadow time,
//! * release-time estimates use **requested limits**, while jobs actually
//!   finish at their (usually shorter) real runtimes. That mismatch is the
//!   fundamental source of queue-wait unpredictability the paper builds
//!   its case on (§3).

use serde::{Deserialize, Serialize};

/// Backfill flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackfillPolicy {
    /// No backfill: strict priority order (head-of-line blocking).
    None,
    /// EASY backfill with reservations for the top `reserve_depth` blocked
    /// jobs. `reserve_depth = 1` is classic EASY.
    Easy {
        /// How many blocked jobs get start-time reservations.
        reserve_depth: usize,
    },
}

impl Default for BackfillPolicy {
    fn default() -> Self {
        BackfillPolicy::Easy { reserve_depth: 1 }
    }
}

/// What the planner needs to know about one pending job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingView {
    /// Requested node count.
    pub nodes: u32,
    /// Requested wall-clock limit (the planner's runtime estimate).
    pub timelimit: i64,
}

/// A start-time reservation for a blocked job.
#[derive(Debug, Clone, Copy)]
struct Reservation {
    /// Earliest instant the blocked job can start (by limit estimates).
    shadow: i64,
    /// Nodes spare at the shadow instant after the blocked job starts.
    extra: u32,
}

/// Reusable working memory for [`plan_schedule_into`], so the per-event
/// scheduling pass allocates nothing once warm.
#[derive(Debug, Default)]
pub struct PlanScratch {
    releases: Vec<(i64, u32)>,
    reservations: Vec<Reservation>,
}

/// Decides which pending jobs start now (allocating convenience wrapper
/// around [`plan_schedule_into`]).
///
/// * `pending` must be sorted by descending priority.
/// * `running` holds `(estimated_release_time, nodes)` of running jobs;
///   order is irrelevant.
///
/// Returns indices into `pending` in the order they should be started.
pub fn plan_schedule(
    pending: &[PendingView],
    free_nodes: u32,
    total_nodes: u32,
    now: i64,
    running: &[(i64, u32)],
    policy: BackfillPolicy,
) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut scratch = PlanScratch::default();
    plan_schedule_into(
        pending,
        free_nodes,
        total_nodes,
        now,
        running,
        policy,
        &mut scratch,
        &mut starts,
    );
    starts
}

/// [`plan_schedule`] writing into caller-provided buffers: `starts` is
/// cleared and filled with the pending indices to start, `scratch` holds
/// the plan's working vectors for reuse across passes.
#[allow(clippy::too_many_arguments)]
pub fn plan_schedule_into(
    pending: &[PendingView],
    free_nodes: u32,
    total_nodes: u32,
    now: i64,
    running: &[(i64, u32)],
    policy: BackfillPolicy,
    scratch: &mut PlanScratch,
    starts: &mut Vec<usize>,
) {
    let mut free = free_nodes;
    starts.clear();
    let releases = &mut scratch.releases;
    releases.clear();
    releases.extend_from_slice(running);

    // Phase 1: strict priority order until the first blocked job.
    let mut head = None;
    for (i, p) in pending.iter().enumerate() {
        if p.nodes <= free {
            free -= p.nodes;
            releases.push((now + p.timelimit, p.nodes));
            starts.push(i);
        } else {
            head = Some(i);
            break;
        }
    }

    let Some(head) = head else {
        return; // everything fit
    };
    let BackfillPolicy::Easy { reserve_depth } = policy else {
        return; // no backfill: stop at the blocked head
    };

    releases.sort_unstable();

    // Phase 2: reservations for the top `reserve_depth` blocked jobs
    // (`head..pending.len()` is the blocked range). Later reservations
    // pessimistically assume earlier reserved jobs hold their nodes
    // forever (documented simplification; exact for depth 1).
    let reservations = &mut scratch.reservations;
    reservations.clear();
    for bi in (head..pending.len()).take(reserve_depth.max(1)) {
        let need = pending[bi].nodes;
        if need > total_nodes {
            // Can never run; don't let it wedge the reservation chain.
            continue;
        }
        let mut avail = free;
        // Deduct nodes promised to earlier reservations from all future
        // availability (pessimistic for depth > 1, exact for depth 1).
        let promised: u32 = (head..pending.len())
            .take(reservations.len())
            .map(|j| pending[j].nodes)
            .sum();
        let mut shadow = now;
        let mut found = false;
        if avail.saturating_sub(promised) >= need {
            found = true;
        } else {
            for &(t, n) in releases.iter() {
                avail += n;
                if avail.saturating_sub(promised) >= need {
                    shadow = t;
                    found = true;
                    break;
                }
            }
        }
        if !found {
            continue;
        }
        reservations.push(Reservation {
            shadow,
            extra: avail.saturating_sub(promised) - need,
        });
    }

    // Phase 3: try to backfill every blocked job that has no reservation.
    let blocked_len = pending.len() - head;
    let reserved_count = reservations.len().min(blocked_len);
    for bi in (head..pending.len()).skip(reserved_count) {
        let p = pending[bi];
        if p.nodes > free {
            continue;
        }
        let est_end = now + p.timelimit;
        let harmless = reservations.iter_mut().all(|r| {
            if est_end <= r.shadow {
                true // returns its nodes before the reserved job needs them
            } else if p.nodes <= r.extra {
                r.extra -= p.nodes; // consumes spare capacity at the shadow
                true
            } else {
                false
            }
        });
        if harmless {
            free -= p.nodes;
            starts.push(bi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EASY: BackfillPolicy = BackfillPolicy::Easy { reserve_depth: 1 };

    fn p(nodes: u32, timelimit: i64) -> PendingView {
        PendingView { nodes, timelimit }
    }

    #[test]
    fn everything_starts_when_it_fits() {
        let pending = [p(2, 100), p(3, 100)];
        let starts = plan_schedule(&pending, 8, 8, 0, &[], EASY);
        assert_eq!(starts, vec![0, 1]);
    }

    #[test]
    fn strict_priority_without_backfill() {
        // Head needs 8, only 4 free; the 1-node job behind it must wait.
        let pending = [p(8, 100), p(1, 10)];
        let starts = plan_schedule(&pending, 4, 8, 0, &[(50, 4)], BackfillPolicy::None);
        assert!(starts.is_empty());
    }

    #[test]
    fn easy_backfills_short_job_that_fits_before_shadow() {
        // 8 total, 4 free, a 4-node job releases at t=50 → head(8) shadow=50.
        // A 1-node job with limit 10 ends at 10 ≤ 50: backfill it.
        let pending = [p(8, 100), p(1, 10)];
        let starts = plan_schedule(&pending, 4, 8, 0, &[(50, 4)], EASY);
        assert_eq!(starts, vec![1]);
    }

    #[test]
    fn easy_rejects_job_that_would_delay_head() {
        // Same setup, but the backfill candidate runs past the shadow and
        // would eat nodes the head needs (extra at shadow = 0).
        let pending = [p(8, 100), p(1, 100)];
        let starts = plan_schedule(&pending, 4, 8, 0, &[(50, 4)], EASY);
        assert!(starts.is_empty());
    }

    #[test]
    fn easy_allows_long_job_in_spare_shadow_capacity() {
        // 10 total, 5 free; 5 running release at 50. Head needs 8 → shadow
        // 50, extra = 10 − 8 = 2. A 2-node long job fits in the extra.
        let pending = [p(8, 100), p(2, 1000)];
        let starts = plan_schedule(&pending, 5, 10, 0, &[(50, 5)], EASY);
        assert_eq!(starts, vec![1]);
    }

    #[test]
    fn extra_capacity_is_consumed_not_reused() {
        // Two 2-node long jobs, but only 2 extra nodes at the shadow: only
        // the first backfills.
        let pending = [p(8, 100), p(2, 1000), p(2, 1000)];
        let starts = plan_schedule(&pending, 5, 10, 0, &[(50, 5)], EASY);
        assert_eq!(starts, vec![1]);
    }

    #[test]
    fn shadow_accumulates_multiple_releases() {
        // 8 total, 0 free; releases at t=10 (2 nodes), t=20 (3), t=30 (3).
        // Head needs 6 → shadow = 20 (2+3 ≥ 6? no, 5 < 6 → t=30, 8 ≥ 6).
        let pending = [p(6, 100), p(2, 5)];
        let starts = plan_schedule(&pending, 0, 8, 0, &[(10, 2), (20, 3), (30, 3)], EASY);
        // Candidate needs 2 nodes but 0 are free now — nothing can start.
        assert!(starts.is_empty());
    }

    #[test]
    fn phase1_starts_consume_future_availability() {
        // 4 free; a 4-node limit-100 job starts in phase 1 and its release
        // becomes part of the timeline for the 6-node head behind it.
        let pending = [p(4, 100), p(6, 50)];
        let starts = plan_schedule(&pending, 4, 8, 0, &[(40, 4)], EASY);
        assert_eq!(starts, vec![0]);
    }

    #[test]
    fn oversized_job_cannot_wedge_the_queue() {
        // Head requests more nodes than exist; backfill continues behind it.
        let pending = [p(16, 100), p(1, 10)];
        let starts = plan_schedule(&pending, 4, 8, 0, &[(50, 4)], EASY);
        assert_eq!(starts, vec![1]);
    }

    #[test]
    fn deeper_reservations_protect_second_blocked_job() {
        // 8 total, 4 free, release of 4 at t=50.
        // blocked: A(8, shadow 50), B(4).
        // With depth 2, B gets a reservation too; candidate C(1, limit 10)
        // still backfills because it ends before both shadows.
        let pending = [p(8, 100), p(4, 100), p(1, 10)];
        let deep = BackfillPolicy::Easy { reserve_depth: 2 };
        let starts = plan_schedule(&pending, 4, 8, 0, &[(50, 4)], deep);
        assert_eq!(starts, vec![2]);
    }

    #[test]
    fn empty_queue_is_a_noop() {
        let starts = plan_schedule(&[], 8, 8, 0, &[], EASY);
        assert!(starts.is_empty());
    }
}
