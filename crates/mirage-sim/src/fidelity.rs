//! Simulator fidelity comparison (§5.2 of the paper).
//!
//! The paper validates the fast simulator against the standard Slurm
//! simulator on five randomly sampled weeks: makespan differs by < 2.5 %,
//! the geometric mean of per-job JCT differences stays within 15 %, and the
//! fast simulator is 3–26× cheaper to run. [`compare`] computes the same
//! statistics for any two runs of the same trace.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use mirage_trace::JobRecord;
use serde::{Deserialize, Serialize};

use crate::backend::{BackendKind, ClusterBackend};
use crate::simulator::SimConfig;

/// Side-by-side fidelity statistics for two runs of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// Jobs matched (by id) across the two runs.
    pub jobs_compared: usize,
    /// Makespan of the fast run, seconds.
    pub makespan_fast: i64,
    /// Makespan of the reference run, seconds.
    pub makespan_reference: i64,
    /// `|fast − ref| / ref`.
    pub makespan_rel_diff: f64,
    /// Geometric mean of per-job JCT ratio deviations:
    /// `exp(mean |ln(jct_fast / jct_ref)|) − 1`.
    pub jct_geomean_diff: f64,
    /// Mean queue wait in the fast run, seconds.
    pub avg_wait_fast: f64,
    /// Mean queue wait in the reference run, seconds.
    pub avg_wait_reference: f64,
}

/// Compares completed job sets from the fast and reference simulators.
///
/// Jobs are matched by id; only jobs completed in both runs participate.
pub fn compare(fast: &[JobRecord], reference: &[JobRecord]) -> FidelityReport {
    let ref_by_id: HashMap<u64, &JobRecord> = reference.iter().map(|j| (j.id, j)).collect();

    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    let mut wait_f = 0.0f64;
    let mut wait_r = 0.0f64;
    for f in fast {
        let Some(r) = ref_by_id.get(&f.id) else {
            continue;
        };
        let (Some(fe), Some(re)) = (f.end, r.end) else {
            continue;
        };
        // JCT floored at one minute so sub-minute jobs don't blow up the
        // ratio statistic (the paper's JCTs are minutes to days).
        let jf = ((fe - f.submit).max(60)) as f64;
        let jr = ((re - r.submit).max(60)) as f64;
        log_sum += (jf / jr).ln().abs();
        wait_f += f.wait().unwrap_or(0) as f64;
        wait_r += r.wait().unwrap_or(0) as f64;
        n += 1;
    }
    let jct_geomean_diff = if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp() - 1.0
    };

    let span = |jobs: &[JobRecord]| -> i64 {
        let first = jobs.iter().map(|j| j.submit).min().unwrap_or(0);
        let last = jobs.iter().filter_map(|j| j.end).max().unwrap_or(first);
        last - first
    };
    let makespan_fast = span(fast);
    let makespan_reference = span(reference);
    let makespan_rel_diff = if makespan_reference > 0 {
        (makespan_fast - makespan_reference).abs() as f64 / makespan_reference as f64
    } else {
        0.0
    };

    FidelityReport {
        jobs_compared: n,
        makespan_fast,
        makespan_reference,
        makespan_rel_diff,
        jct_geomean_diff,
        avg_wait_fast: if n == 0 { 0.0 } else { wait_f / n as f64 },
        avg_wait_reference: if n == 0 { 0.0 } else { wait_r / n as f64 },
    }
}

/// Replays `trace` to completion on any backend through the shared
/// [`ClusterBackend`] trait, returning the completed jobs and the
/// wall-clock cost of the replay (loading included, reset excluded).
pub fn run_timed<B: ClusterBackend>(
    backend: &mut B,
    trace: &[JobRecord],
) -> (Vec<JobRecord>, Duration) {
    backend.reset();
    let t = Instant::now();
    backend.load_trace(trace);
    backend.run_to_completion();
    let elapsed = t.elapsed();
    (backend.completed(), elapsed)
}

/// Runs one trace through both simulators — the event-driven and the
/// tick-driven backend, both driven through [`ClusterBackend`] — timing
/// each, and returns the fidelity report plus wall-clock costs
/// `(report, fast_time, ref_time)`.
pub fn run_both(trace: &[JobRecord], nodes: u32) -> (FidelityReport, Duration, Duration) {
    let builder = SimConfig::builder().nodes(nodes);
    let mut fast = builder.clone().backend(BackendKind::EventDriven).build();
    let mut reference = builder.backend(BackendKind::Tick).build();
    run_both_backends(&mut fast, &mut reference, trace)
}

/// [`run_both`] over caller-supplied backends: any two [`ClusterBackend`]
/// implementations can be compared for fidelity.
pub fn run_both_backends<A: ClusterBackend, B: ClusterBackend>(
    fast: &mut A,
    reference: &mut B,
    trace: &[JobRecord],
) -> (FidelityReport, Duration, Duration) {
    let (fast_done, fast_time) = run_timed(fast, trace);
    let (ref_done, ref_time) = run_timed(reference, trace);
    (compare(&fast_done, &ref_done), fast_time, ref_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::HOUR;

    fn done(id: u64, submit: i64, start: i64, runtime: i64) -> JobRecord {
        let mut j = JobRecord::new(id, format!("j{id}"), 1, submit, 1, 2 * runtime, runtime);
        j.complete_at(start);
        j
    }

    #[test]
    fn identical_runs_have_zero_diff() {
        let jobs = vec![done(1, 0, 10, HOUR), done(2, 100, 4000, HOUR)];
        let r = compare(&jobs, &jobs);
        assert_eq!(r.jobs_compared, 2);
        assert!(r.makespan_rel_diff.abs() < 1e-12);
        assert!(r.jct_geomean_diff.abs() < 1e-12);
    }

    #[test]
    fn jct_diff_is_symmetric_in_direction() {
        // One job 10% slower, another 10% faster: |ln| accumulates both.
        let a = vec![done(1, 0, 0, 10_000), done(2, 0, 0, 10_000)];
        let b = vec![done(1, 0, 0, 11_000), done(2, 0, 0, 9_091)];
        let r = compare(&a, &b);
        assert!(r.jct_geomean_diff > 0.08 && r.jct_geomean_diff < 0.12);
    }

    #[test]
    fn unmatched_jobs_are_skipped() {
        let a = vec![done(1, 0, 10, HOUR), done(9, 0, 10, HOUR)];
        let b = vec![done(1, 0, 10, HOUR)];
        let r = compare(&a, &b);
        assert_eq!(r.jobs_compared, 1);
    }

    #[test]
    fn run_both_agrees_on_small_trace() {
        let trace: Vec<JobRecord> = (0..30)
            .map(|i| {
                JobRecord::new(
                    i + 1,
                    format!("j{i}"),
                    (i % 5) as u32,
                    i as i64 * 900,
                    1 + (i % 2) as u32,
                    2 * HOUR,
                    HOUR,
                )
            })
            .collect();
        let (report, _tf, _tr) = run_both(&trace, 4);
        assert_eq!(report.jobs_compared, 30);
        // Tick-alignment shifts starts by at most a couple of minutes on
        // hour-long jobs: both statistics must stay small.
        assert!(report.makespan_rel_diff < 0.05, "{report:?}");
        assert!(report.jct_geomean_diff < 0.20, "{report:?}");
    }
}
