//! Aggregate simulation metrics: utilization, makespan, waits, JCT.

use mirage_trace::JobRecord;
use serde::{Deserialize, Serialize};

/// Summary of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Jobs that ran to completion.
    pub completed_jobs: usize,
    /// Jobs rejected (could never fit the partition).
    pub rejected_jobs: usize,
    /// Completion time of the last job minus the first submit (seconds).
    pub makespan: i64,
    /// Mean queue wait over completed jobs (seconds).
    pub avg_wait: f64,
    /// Mean job completion time (end − submit) over completed jobs.
    pub avg_jct: f64,
    /// Node-seconds of work done divided by node-seconds available over the
    /// active span.
    pub utilization: f64,
    /// Jobs that exhausted their retry attempts under fault injection and
    /// failed terminally. Always 0 without faults.
    #[serde(default)]
    pub failed_jobs: usize,
}

/// Per-service (= per-user) accounting of one simulation run: how much
/// of the shared cluster a single submitting user is holding and has
/// consumed. Multi-service provisioning tags each service's pair jobs
/// with the service's user id, so this is the ledger a shared-cluster
/// reward and the scenario harness read per service.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceUsage {
    /// The user id the accounting is for.
    pub user: u32,
    /// Jobs currently waiting in the queue.
    pub queued: usize,
    /// Nodes requested by those queued jobs.
    pub queued_nodes: u64,
    /// Jobs currently running.
    pub running: usize,
    /// Nodes held by those running jobs.
    pub running_nodes: u64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Node-seconds consumed by the completed jobs.
    pub node_seconds: f64,
    /// Summed queue wait (start − submit) of the completed jobs, seconds.
    pub wait_sum: i64,
}

impl ServiceUsage {
    /// An empty ledger for `user`.
    pub fn empty(user: u32) -> Self {
        Self {
            user,
            ..Self::default()
        }
    }

    /// Mean queue wait over this user's completed jobs (`None` when
    /// nothing completed).
    pub fn avg_wait(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.wait_sum as f64 / self.completed as f64)
    }

    /// Whether the user has any footprint at all (queued, running or
    /// completed work).
    pub fn is_idle(&self) -> bool {
        self.queued == 0 && self.running == 0 && self.completed == 0
    }
}

impl SimMetrics {
    /// Computes metrics from completed job records.
    ///
    /// `busy_node_seconds` and `span` come from the simulator's internal
    /// accounting (`span` = simulated time from first submit to the final
    /// event).
    pub fn from_completed(
        completed: &[JobRecord],
        rejected: usize,
        total_nodes: u32,
        busy_node_seconds: f64,
        span: i64,
    ) -> Self {
        let n = completed.len();
        let first_submit = completed.iter().map(|j| j.submit).min().unwrap_or(0);
        let last_end = completed
            .iter()
            .filter_map(|j| j.end)
            .max()
            .unwrap_or(first_submit);
        let makespan = last_end - first_submit;
        let avg_wait = if n == 0 {
            0.0
        } else {
            completed
                .iter()
                .filter_map(|j| j.wait())
                .map(|w| w as f64)
                .sum::<f64>()
                / n as f64
        };
        let avg_jct = if n == 0 {
            0.0
        } else {
            completed
                .iter()
                .filter_map(|j| j.end.map(|e| (e - j.submit) as f64))
                .sum::<f64>()
                / n as f64
        };
        let utilization = if span > 0 && total_nodes > 0 {
            busy_node_seconds / (f64::from(total_nodes) * span as f64)
        } else {
            0.0
        };
        Self {
            completed_jobs: n,
            rejected_jobs: rejected,
            makespan,
            avg_wait,
            avg_jct,
            utilization,
            failed_jobs: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(id: u64, submit: i64, start: i64, runtime: i64) -> JobRecord {
        let mut j = JobRecord::new(id, format!("j{id}"), 1, submit, 1, 2 * runtime, runtime);
        j.complete_at(start);
        j
    }

    #[test]
    fn metrics_aggregate_correctly() {
        let jobs = vec![done(1, 0, 10, 100), done(2, 50, 200, 100)];
        let m = SimMetrics::from_completed(&jobs, 1, 4, 800.0, 300);
        assert_eq!(m.completed_jobs, 2);
        assert_eq!(m.rejected_jobs, 1);
        assert_eq!(m.makespan, 300); // last end 300, first submit 0
        assert!((m.avg_wait - 80.0).abs() < 1e-9); // (10 + 150) / 2
        assert!((m.avg_jct - 180.0).abs() < 1e-9); // (110 + 250) / 2
        assert!((m.utilization - 800.0 / 1200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_is_all_zeroes() {
        let m = SimMetrics::from_completed(&[], 0, 4, 0.0, 0);
        assert_eq!(m.completed_jobs, 0);
        assert_eq!(m.makespan, 0);
        assert_eq!(m.avg_wait, 0.0);
        assert_eq!(m.utilization, 0.0);
    }
}
