//! Hand-rolled JSON persistence for simulator configurations.
//!
//! The workspace's vendored `serde` is an API-compatible no-op stub (it
//! exists so derives compile, not to serialize), so durable config files —
//! experiment manifests, checkpoint sidecars — go through this module
//! instead, following the `mirage-nn` checkpoint writer's approach.
//!
//! The format is stable and **backward compatible**: every key is
//! optional, and a missing key takes the value `SimConfig::new(nodes)` /
//! `ReferenceConfig::new(nodes)` would give it. In particular, config
//! files written before heterogeneous pools existed (no `"hetero"` key)
//! deserialize to the homogeneous single-partition model, and files
//! written before fault injection (no `"faults"`/`"retry"`) get the inert
//! fault model — both pinned by tests here.

use std::fmt;

use crate::backfill::BackfillPolicy;
use crate::fault::{FaultModel, RetryPolicy};
use crate::hetero::{HeteroModel, NodePool};
use crate::priority::PriorityWeights;
use crate::reference::ReferenceConfig;
use crate::simulator::SimConfig;

/// Error from parsing a persisted simulator config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigJsonError(String);

impl ConfigJsonError {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for ConfigJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulator config JSON: {}", self.0)
    }
}

impl std::error::Error for ConfigJsonError {}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Serializes a fast-simulator config. Round-trips exactly through
/// [`sim_config_from_json`] (floats use the shortest round-trip repr).
pub fn sim_config_to_json(cfg: &SimConfig) -> String {
    let mut s = String::with_capacity(512);
    s.push('{');
    push_kv(&mut s, "nodes", &cfg.nodes.to_string());
    push_weights(&mut s, &cfg.weights);
    push_backfill(&mut s, &cfg.backfill);
    push_kv(&mut s, "reject_oversized", bool_str(cfg.reject_oversized));
    push_kv(&mut s, "sched_depth", &cfg.sched_depth.to_string());
    push_faults(&mut s, &cfg.faults);
    push_retry(&mut s, &cfg.retry);
    push_hetero(&mut s, &cfg.hetero);
    finish_obj(&mut s);
    s
}

/// Serializes a reference-simulator config. Round-trips exactly through
/// [`reference_config_from_json`].
pub fn reference_config_to_json(cfg: &ReferenceConfig) -> String {
    let mut s = String::with_capacity(512);
    s.push('{');
    push_kv(&mut s, "nodes", &cfg.nodes.to_string());
    push_weights(&mut s, &cfg.weights);
    push_kv(&mut s, "sched_interval", &cfg.sched_interval.to_string());
    push_kv(
        &mut s,
        "backfill_interval",
        &cfg.backfill_interval.to_string(),
    );
    push_backfill(&mut s, &cfg.backfill);
    push_kv(&mut s, "tick", &cfg.tick.to_string());
    push_faults(&mut s, &cfg.faults);
    push_retry(&mut s, &cfg.retry);
    push_hetero(&mut s, &cfg.hetero);
    finish_obj(&mut s);
    s
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// `{:?}` on a finite f64 is the shortest decimal that parses back to the
/// same bits, which is exactly what a round-tripping config file needs.
fn f64_str(v: f64) -> String {
    format!("{v:?}")
}

fn push_kv(s: &mut String, key: &str, value: &str) {
    s.push('"');
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(value);
    s.push_str(", ");
}

fn push_str_kv(s: &mut String, key: &str, value: &str) {
    let mut quoted = String::with_capacity(value.len() + 2);
    quoted.push('"');
    for ch in value.chars() {
        match ch {
            '"' => quoted.push_str("\\\""),
            '\\' => quoted.push_str("\\\\"),
            c if (c as u32) < 0x20 => quoted.push_str(&format!("\\u{:04x}", c as u32)),
            c => quoted.push(c),
        }
    }
    quoted.push('"');
    push_kv(s, key, &quoted);
}

fn finish_obj(s: &mut String) {
    if s.ends_with(", ") {
        s.truncate(s.len() - 2);
    }
    s.push('}');
}

fn push_weights(s: &mut String, w: &PriorityWeights) {
    let mut o = String::new();
    o.push('{');
    push_kv(&mut o, "age", &f64_str(w.age));
    push_kv(&mut o, "age_max", &w.age_max.to_string());
    push_kv(&mut o, "size", &f64_str(w.size));
    push_kv(&mut o, "fairshare", &f64_str(w.fairshare));
    push_kv(
        &mut o,
        "fairshare_halflife",
        &w.fairshare_halflife.to_string(),
    );
    finish_obj(&mut o);
    push_kv(s, "weights", &o);
}

fn push_backfill(s: &mut String, b: &BackfillPolicy) {
    let v = match b {
        BackfillPolicy::None => "\"none\"".to_string(),
        BackfillPolicy::Easy { reserve_depth } => {
            format!("{{\"easy\": {reserve_depth}}}")
        }
    };
    push_kv(s, "backfill", &v);
}

fn push_faults(s: &mut String, f: &FaultModel) {
    let mut o = String::new();
    o.push('{');
    push_kv(&mut o, "mtbf", &f.mtbf.to_string());
    push_kv(&mut o, "mttr", &f.mttr.to_string());
    push_kv(&mut o, "job_fail_prob", &f64_str(f.job_fail_prob));
    push_kv(&mut o, "seed", &f.seed.to_string());
    push_kv(&mut o, "horizon", &f.horizon.to_string());
    finish_obj(&mut o);
    push_kv(s, "faults", &o);
}

fn push_retry(s: &mut String, r: &RetryPolicy) {
    let mut o = String::new();
    o.push('{');
    push_kv(&mut o, "max_attempts", &r.max_attempts.to_string());
    push_kv(&mut o, "backoff_base", &r.backoff_base.to_string());
    push_kv(&mut o, "backoff_cap", &r.backoff_cap.to_string());
    finish_obj(&mut o);
    push_kv(s, "retry", &o);
}

fn push_hetero(s: &mut String, h: &HeteroModel) {
    let mut o = String::new();
    o.push('{');
    push_kv(&mut o, "enabled", bool_str(h.enabled));
    let mut pools = String::from("[");
    for (i, p) in h.pools.iter().enumerate() {
        if i > 0 {
            pools.push_str(", ");
        }
        let mut po = String::new();
        po.push('{');
        push_str_kv(&mut po, "kind", &p.kind);
        push_kv(&mut po, "nodes", &p.nodes.to_string());
        push_kv(&mut po, "throughput", &f64_str(p.throughput));
        finish_obj(&mut po);
        pools.push_str(&po);
    }
    pools.push(']');
    push_kv(&mut o, "pools", &pools);
    push_kv(&mut o, "contention", &f64_str(h.contention));
    push_kv(&mut o, "congestion", &f64_str(h.congestion));
    push_kv(&mut o, "seed", &h.seed.to_string());
    finish_obj(&mut o);
    push_kv(s, "hetero", &o);
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (numbers kept as raw text so u64 seeds keep full
// precision instead of routing through f64)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> ConfigJsonError {
        ConfigJsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ConfigJsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ConfigJsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, ConfigJsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, ConfigJsonError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        Ok(Json::Num(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("numeric bytes are ASCII")
                .to_string(),
        ))
    }

    fn string(&mut self) -> Result<String, ConfigJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ConfigJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ConfigJsonError> {
        self.expect(b'{')?;
        let mut kvs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(kvs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            kvs.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(kvs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse_root(s: &str) -> Result<Json, ConfigJsonError> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

// Typed field readers: absent keys fall back to `default`, present keys
// must parse (a malformed value is an error, not a silent default).

fn num<T: std::str::FromStr>(v: &Json, what: &str) -> Result<T, ConfigJsonError> {
    let Json::Num(raw) = v else {
        return Err(ConfigJsonError::new(format!("{what}: expected a number")));
    };
    raw.parse::<T>()
        .map_err(|_| ConfigJsonError::new(format!("{what}: cannot parse {raw:?}")))
}

fn field_num<T: std::str::FromStr>(
    obj: &Json,
    key: &str,
    default: T,
) -> Result<T, ConfigJsonError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => num(v, key),
    }
}

fn field_bool(obj: &Json, key: &str, default: bool) -> Result<bool, ConfigJsonError> {
    match obj.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(ConfigJsonError::new(format!("{key}: expected a bool"))),
    }
}

fn read_weights(obj: &Json, default: PriorityWeights) -> Result<PriorityWeights, ConfigJsonError> {
    let Some(w) = obj.get("weights") else {
        return Ok(default);
    };
    Ok(PriorityWeights {
        age: field_num(w, "age", default.age)?,
        age_max: field_num(w, "age_max", default.age_max)?,
        size: field_num(w, "size", default.size)?,
        fairshare: field_num(w, "fairshare", default.fairshare)?,
        fairshare_halflife: field_num(w, "fairshare_halflife", default.fairshare_halflife)?,
    })
}

fn read_backfill(obj: &Json, default: BackfillPolicy) -> Result<BackfillPolicy, ConfigJsonError> {
    match obj.get("backfill") {
        None => Ok(default),
        Some(Json::Str(s)) if s == "none" => Ok(BackfillPolicy::None),
        Some(v @ Json::Obj(_)) => match v.get("easy") {
            Some(d) => Ok(BackfillPolicy::Easy {
                reserve_depth: num(d, "backfill.easy")?,
            }),
            None => Err(ConfigJsonError::new("backfill: unknown object variant")),
        },
        Some(_) => Err(ConfigJsonError::new(
            "backfill: expected \"none\" or {\"easy\": depth}",
        )),
    }
}

fn read_faults(obj: &Json) -> Result<FaultModel, ConfigJsonError> {
    let d = FaultModel::none();
    let Some(f) = obj.get("faults") else {
        return Ok(d);
    };
    Ok(FaultModel {
        mtbf: field_num(f, "mtbf", d.mtbf)?,
        mttr: field_num(f, "mttr", d.mttr)?,
        job_fail_prob: field_num(f, "job_fail_prob", d.job_fail_prob)?,
        seed: field_num(f, "seed", d.seed)?,
        horizon: field_num(f, "horizon", d.horizon)?,
    })
}

fn read_retry(obj: &Json) -> Result<RetryPolicy, ConfigJsonError> {
    let d = RetryPolicy::default();
    let Some(r) = obj.get("retry") else {
        return Ok(d);
    };
    Ok(RetryPolicy {
        max_attempts: field_num(r, "max_attempts", d.max_attempts)?,
        backoff_base: field_num(r, "backoff_base", d.backoff_base)?,
        backoff_cap: field_num(r, "backoff_cap", d.backoff_cap)?,
    })
}

fn read_hetero(obj: &Json) -> Result<HeteroModel, ConfigJsonError> {
    let d = HeteroModel::none();
    let Some(h) = obj.get("hetero") else {
        // Pre-pool config file: homogeneous single-partition model.
        return Ok(d);
    };
    let mut pools = Vec::new();
    if let Some(arr) = h.get("pools") {
        let Json::Arr(items) = arr else {
            return Err(ConfigJsonError::new("hetero.pools: expected an array"));
        };
        for item in items {
            let Some(Json::Str(kind)) = item.get("kind") else {
                return Err(ConfigJsonError::new("hetero.pools.kind: expected a string"));
            };
            pools.push(NodePool {
                kind: kind.clone(),
                nodes: field_num(item, "nodes", 0u32)?,
                throughput: field_num(item, "throughput", 1.0f64)?,
            });
        }
    }
    Ok(HeteroModel {
        enabled: field_bool(h, "enabled", d.enabled)?,
        pools,
        contention: field_num(h, "contention", d.contention)?,
        congestion: field_num(h, "congestion", d.congestion)?,
        seed: field_num(h, "seed", d.seed)?,
    })
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

/// Parses a fast-simulator config. Missing keys default like
/// `SimConfig::new(nodes)`; a missing `"nodes"` defaults to 1.
pub fn sim_config_from_json(s: &str) -> Result<SimConfig, ConfigJsonError> {
    let root = parse_root(s)?;
    if !matches!(root, Json::Obj(_)) {
        return Err(ConfigJsonError::new("top level: expected an object"));
    }
    let nodes = field_num(&root, "nodes", 1u32)?;
    let d = SimConfig::new(nodes);
    Ok(SimConfig {
        nodes,
        weights: read_weights(&root, d.weights)?,
        backfill: read_backfill(&root, d.backfill)?,
        reject_oversized: field_bool(&root, "reject_oversized", d.reject_oversized)?,
        sched_depth: field_num(&root, "sched_depth", d.sched_depth)?,
        faults: read_faults(&root)?,
        retry: read_retry(&root)?,
        hetero: read_hetero(&root)?,
    })
}

/// Parses a reference-simulator config. Missing keys default like
/// `ReferenceConfig::new(nodes)`; a missing `"nodes"` defaults to 1.
pub fn reference_config_from_json(s: &str) -> Result<ReferenceConfig, ConfigJsonError> {
    let root = parse_root(s)?;
    if !matches!(root, Json::Obj(_)) {
        return Err(ConfigJsonError::new("top level: expected an object"));
    }
    let nodes = field_num(&root, "nodes", 1u32)?;
    let d = ReferenceConfig::new(nodes);
    Ok(ReferenceConfig {
        nodes,
        weights: read_weights(&root, d.weights)?,
        sched_interval: field_num(&root, "sched_interval", d.sched_interval)?,
        backfill_interval: field_num(&root, "backfill_interval", d.backfill_interval)?,
        backfill: read_backfill(&root, d.backfill)?,
        tick: field_num(&root, "tick", d.tick)?,
        faults: read_faults(&root)?,
        retry: read_retry(&root)?,
        hetero: read_hetero(&root)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hetero_cfg() -> SimConfig {
        let mut cfg = SimConfig::new(8);
        cfg.sched_depth = 64;
        cfg.faults = FaultModel::moderate(17);
        cfg.retry.max_attempts = 5;
        cfg.hetero = HeteroModel::with_pools(
            vec![NodePool::new("a100", 2, 1.6), NodePool::new("v100", 6, 1.0)],
            0.75,
            12_345_678_901_234_567,
        );
        cfg
    }

    #[test]
    fn sim_config_round_trips_with_hetero_pools() {
        let cfg = hetero_cfg();
        let json = sim_config_to_json(&cfg);
        let back = sim_config_from_json(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn reference_config_round_trips_with_hetero_pools() {
        let mut cfg = ReferenceConfig::new(8);
        cfg.tick = 15;
        cfg.backfill = BackfillPolicy::None;
        cfg.hetero = HeteroModel::balanced(8, 99);
        let json = reference_config_to_json(&cfg);
        let back = reference_config_from_json(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn legacy_fixture_without_pool_fields_is_homogeneous() {
        // A config file exactly as PR-7-era code would have written it: no
        // "hetero" key at all. Must parse to the homogeneous model and
        // otherwise match the explicit fields.
        let legacy = r#"{
            "nodes": 16,
            "weights": {"age": 1000.0, "age_max": 604800, "size": 200.0,
                        "fairshare": 500.0, "fairshare_halflife": 604800},
            "backfill": {"easy": 2},
            "reject_oversized": false,
            "sched_depth": 128,
            "faults": {"mtbf": 86400, "mttr": 3600, "job_fail_prob": 0.01,
                       "seed": 7, "horizon": 2592000},
            "retry": {"max_attempts": 3, "backoff_base": 60, "backoff_cap": 3600}
        }"#;
        let cfg = sim_config_from_json(legacy).unwrap();
        assert!(cfg.hetero.is_none(), "legacy files stay homogeneous");
        assert_eq!(cfg.hetero, HeteroModel::none());
        assert_eq!(cfg.nodes, 16);
        assert!(!cfg.reject_oversized);
        assert_eq!(cfg.sched_depth, 128);
        assert_eq!(cfg.backfill, BackfillPolicy::Easy { reserve_depth: 2 });
        assert_eq!(cfg.faults.seed, 7);
        assert!(cfg.validate().is_ok());
        // Even older files (pre-fault-injection) also parse.
        let ancient = r#"{"nodes": 4}"#;
        let cfg = sim_config_from_json(ancient).unwrap();
        assert_eq!(cfg, SimConfig::new(4));
        let rcfg = reference_config_from_json(ancient).unwrap();
        assert_eq!(rcfg, ReferenceConfig::new(4));
    }

    #[test]
    fn u64_seeds_keep_full_precision() {
        let mut cfg = SimConfig::new(2);
        cfg.faults.seed = u64::MAX - 1;
        cfg.hetero = HeteroModel::with_pools(vec![NodePool::new("p", 2, 1.0)], 0.0, u64::MAX);
        let back = sim_config_from_json(&sim_config_to_json(&cfg)).unwrap();
        assert_eq!(back.faults.seed, u64::MAX - 1);
        assert_eq!(back.hetero.seed, u64::MAX);
    }

    #[test]
    fn malformed_values_error_instead_of_defaulting() {
        assert!(sim_config_from_json("{").is_err());
        assert!(sim_config_from_json(r#"{"nodes": "eight"}"#).is_err());
        assert!(sim_config_from_json(r#"{"backfill": 3}"#).is_err());
        assert!(sim_config_from_json(r#"{"hetero": {"pools": 7}}"#).is_err());
        assert!(sim_config_from_json(r#"{"nodes": 2} trailing"#).is_err());
    }

    #[test]
    fn pool_kind_strings_escape_round_trip() {
        let mut cfg = SimConfig::new(2);
        cfg.hetero = HeteroModel::with_pools(vec![NodePool::new("a\"b\\c", 2, 1.0)], 0.0, 1);
        let back = sim_config_from_json(&sim_config_to_json(&cfg)).unwrap();
        assert_eq!(back.hetero.pools[0].kind, "a\"b\\c");
    }
}
