//! The [`ClusterBackend`] abstraction: one trait in front of every
//! simulator implementation.
//!
//! The Mirage agent's contract with the cluster is tiny — inject a job
//! ([`ClusterBackend::submit`]), observe the queue ([`ClusterBackend::sample`]),
//! advance time ([`ClusterBackend::step`]) — and nothing in the provisioning
//! stack should care *which* simulator honors it. This module makes that
//! official:
//!
//! * [`ClusterBackend`] — the trait, implemented by the event-driven
//!   [`Simulator`], the tick-driven [`ReferenceSimulator`] and the
//!   enum-dispatched [`AnyBackend`],
//! * [`SimBuilder`] (via [`SimConfig::builder`]) — value-level backend
//!   selection: `SimConfig::builder().nodes(64).seed(7)
//!   .backend(BackendKind::Tick).build()`,
//! * [`BackendFactory`] — seeded construction of fresh backends, for
//!   parallel collection,
//! * [`BackendPool`] — N independently seeded backends fanned out over
//!   std threads (the vendored `rayon` is sequential, so this is the
//!   workspace's real parallelism for episode collection). The pool is
//!   **supervised**: a task that panics does not kill the run — the
//!   worker catches the unwind, rebuilds its backend from the factory,
//!   and the task is retried (on whichever worker claims it next) under
//!   a bounded-backoff budget, with every incident counted in
//!   [`PoolHealth`]. [`PanicPlan`] injects deterministic panics so the
//!   supervision path itself is testable.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use mirage_trace::{split_seed, JobRecord};

use crate::fault::{FaultModel, FaultStats, JobFaults, RetryPolicy, SimConfigError};
use crate::hetero::{HeteroModel, HeteroStats};
use crate::metrics::{ServiceUsage, SimMetrics};
use crate::reference::{ReferenceConfig, ReferenceSimulator};
use crate::simulator::{JobStatus, SimConfig, Simulator};
use crate::snapshot::ClusterSnapshot;
use crate::{BackfillPolicy, PriorityWeights};

/// A simulated cluster that the provisioning stack can drive.
///
/// Semantics shared by every implementation:
///
/// * time is monotone; [`step`](Self::step) ignores non-positive `dt`,
/// * [`submit`](Self::submit) overrides the job's submit time to *now* and
///   returns the id under which the backend tracks it (reassigned if the
///   requested id is 0 or already taken),
/// * [`reset`](Self::reset) returns to an idle cluster at time 0 with the
///   same configuration, so one backend value can host many episodes.
pub trait ClusterBackend {
    /// Current simulated time, seconds.
    fn now(&self) -> i64;

    /// Partition size.
    fn total_nodes(&self) -> u32;

    /// Idle node count.
    fn free_nodes(&self) -> u32;

    /// Nodes physically available right now (total minus crashed). The
    /// default assumes perfectly reliable hardware; fault-injecting
    /// backends override it.
    fn available_nodes(&self) -> u32 {
        self.total_nodes()
    }

    /// Fault evictions within the trailing `window` seconds (0 without
    /// fault injection).
    fn recent_evictions(&self, window: i64) -> u32 {
        let _ = window;
        0
    }

    /// Aggregate fault counters of the run so far (all zero without fault
    /// injection).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Per-job fault ledger by id (zero for unknown ids, untouched jobs,
    /// and backends without fault injection).
    fn job_faults(&self, id: u64) -> JobFaults {
        let _ = id;
        JobFaults::default()
    }

    /// Per-pool free-node counts on a heterogeneous partition, in pool
    /// declaration order. The default assumes a homogeneous cluster
    /// (empty); pool-aware backends override it.
    fn pool_free(&self) -> Vec<u32> {
        Vec::new()
    }

    /// Per-pool node totals, aligned with [`pool_free`](Self::pool_free)
    /// (empty on a homogeneous cluster).
    fn pool_total(&self) -> Vec<u32> {
        Vec::new()
    }

    /// Aggregate placement/contention counters of the run so far (all
    /// zero without heterogeneity).
    fn hetero_stats(&self) -> HeteroStats {
        HeteroStats::default()
    }

    /// Running jobs currently suffering a contention slowdown (0 without
    /// heterogeneity).
    fn contended_running(&self) -> u32 {
        0
    }

    /// Loads a trace of future arrivals (ids preserved when unique).
    fn load_trace(&mut self, jobs: &[JobRecord]);

    /// Submits a job *now*; returns its tracking id.
    fn submit(&mut self, job: JobRecord) -> u64;

    /// Observable cluster state at the current instant.
    fn sample(&self) -> ClusterSnapshot;

    /// Observable cluster state written into a caller-provided snapshot,
    /// reusing its `queued`/`running` vectors so the steady-state decision
    /// loop samples without allocating. The result must equal a fresh
    /// [`sample`](Self::sample) — stale contents of `out` are overwritten.
    /// The default just delegates; concrete backends override with a
    /// buffer-reusing implementation.
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        *out = self.sample();
    }

    /// Lifecycle status of a job by id.
    fn status(&self, id: u64) -> Option<JobStatus>;

    /// Advances simulated time by `dt` seconds (non-positive `dt` is a
    /// no-op rather than an event-order hazard).
    fn step(&mut self, dt: i64);

    /// Advances simulated time to `t_end`.
    fn run_until(&mut self, t_end: i64);

    /// Runs until no work remains.
    fn run_to_completion(&mut self);

    /// Whether queued, running or future work remains.
    fn is_active(&self) -> bool;

    /// Completed job records, in completion order.
    fn completed(&self) -> Vec<JobRecord>;

    /// Aggregate metrics of the run so far.
    fn metrics(&self) -> SimMetrics;

    /// Mean queue wait of jobs started within the trailing `window`
    /// seconds (`None` if nothing started).
    fn avg_recent_wait(&self, window: i64) -> Option<f64>;

    /// Per-user accounting: `user`'s queued/running footprint and
    /// completed consumption on this cluster. Multi-service provisioning
    /// tags each service's jobs with a distinct user id and reads its
    /// share of the shared queue through this ledger. The default derives
    /// it from [`sample`](Self::sample)/[`completed`](Self::completed)
    /// (allocating); the bundled backends override it with a single
    /// allocation-free pass over their job arenas.
    fn user_usage(&self, user: u32) -> ServiceUsage {
        let mut usage = ServiceUsage::empty(user);
        let snap = self.sample();
        for q in &snap.queued {
            if q.user == user {
                usage.queued += 1;
                usage.queued_nodes += u64::from(q.nodes);
            }
        }
        for r in &snap.running {
            if r.user == user {
                usage.running += 1;
                usage.running_nodes += u64::from(r.nodes);
            }
        }
        for job in self.completed() {
            if job.user != user {
                continue;
            }
            let (Some(start), Some(end)) = (job.start, job.end) else {
                continue;
            };
            usage.completed += 1;
            usage.node_seconds += f64::from(job.nodes) * (end - start) as f64;
            usage.wait_sum += start - job.submit;
        }
        usage
    }

    /// Returns to an idle cluster at time 0, keeping the configuration.
    fn reset(&mut self);

    /// Resets and immediately loads `trace` — the "fresh episode from a
    /// trace" constructor path.
    fn reset_with(&mut self, trace: &[JobRecord]) {
        self.reset();
        self.load_trace(trace);
    }
}

impl<T: ClusterBackend + ?Sized> ClusterBackend for &mut T {
    fn now(&self) -> i64 {
        (**self).now()
    }
    fn total_nodes(&self) -> u32 {
        (**self).total_nodes()
    }
    fn free_nodes(&self) -> u32 {
        (**self).free_nodes()
    }
    // Defaults do not forward: a reborrow must reach the underlying
    // backend's fault surface, not the reliable-hardware fallback.
    fn available_nodes(&self) -> u32 {
        (**self).available_nodes()
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        (**self).recent_evictions(window)
    }
    fn fault_stats(&self) -> FaultStats {
        (**self).fault_stats()
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        (**self).job_faults(id)
    }
    fn pool_free(&self) -> Vec<u32> {
        (**self).pool_free()
    }
    fn pool_total(&self) -> Vec<u32> {
        (**self).pool_total()
    }
    fn hetero_stats(&self) -> HeteroStats {
        (**self).hetero_stats()
    }
    fn contended_running(&self) -> u32 {
        (**self).contended_running()
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        (**self).load_trace(jobs);
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        (**self).submit(job)
    }
    fn sample(&self) -> ClusterSnapshot {
        (**self).sample()
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        (**self).sample_into(out);
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        (**self).status(id)
    }
    fn step(&mut self, dt: i64) {
        (**self).step(dt);
    }
    fn run_until(&mut self, t_end: i64) {
        (**self).run_until(t_end);
    }
    fn run_to_completion(&mut self) {
        (**self).run_to_completion();
    }
    fn is_active(&self) -> bool {
        (**self).is_active()
    }
    fn completed(&self) -> Vec<JobRecord> {
        (**self).completed()
    }
    fn metrics(&self) -> SimMetrics {
        (**self).metrics()
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        (**self).avg_recent_wait(window)
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        (**self).user_usage(user)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
}

impl ClusterBackend for Simulator {
    fn now(&self) -> i64 {
        Simulator::now(self)
    }
    fn total_nodes(&self) -> u32 {
        Simulator::total_nodes(self)
    }
    fn free_nodes(&self) -> u32 {
        Simulator::free_nodes(self)
    }
    fn available_nodes(&self) -> u32 {
        Simulator::available_nodes(self)
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        Simulator::recent_evictions(self, window)
    }
    fn fault_stats(&self) -> FaultStats {
        Simulator::fault_stats(self)
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        Simulator::job_faults(self, id)
    }
    fn pool_free(&self) -> Vec<u32> {
        Simulator::pool_free(self)
    }
    fn pool_total(&self) -> Vec<u32> {
        Simulator::pool_total(self)
    }
    fn hetero_stats(&self) -> HeteroStats {
        Simulator::hetero_stats(self)
    }
    fn contended_running(&self) -> u32 {
        Simulator::contended_running(self)
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        Simulator::load_trace(self, jobs);
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        Simulator::submit(self, job)
    }
    fn sample(&self) -> ClusterSnapshot {
        Simulator::sample(self)
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        Simulator::sample_into(self, out);
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        self.job_status(id)
    }
    fn step(&mut self, dt: i64) {
        Simulator::step(self, dt);
    }
    fn run_until(&mut self, t_end: i64) {
        Simulator::run_until(self, t_end);
    }
    fn run_to_completion(&mut self) {
        Simulator::run_to_completion(self);
    }
    fn is_active(&self) -> bool {
        Simulator::is_active(self)
    }
    fn completed(&self) -> Vec<JobRecord> {
        Simulator::completed(self)
    }
    fn metrics(&self) -> SimMetrics {
        Simulator::metrics(self)
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        Simulator::avg_recent_wait(self, window)
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        Simulator::user_usage(self, user)
    }
    fn reset(&mut self) {
        Simulator::reset(self);
    }
}

impl ClusterBackend for ReferenceSimulator {
    fn now(&self) -> i64 {
        ReferenceSimulator::now(self)
    }
    fn total_nodes(&self) -> u32 {
        ReferenceSimulator::total_nodes(self)
    }
    fn free_nodes(&self) -> u32 {
        ReferenceSimulator::free_nodes(self)
    }
    fn available_nodes(&self) -> u32 {
        ReferenceSimulator::available_nodes(self)
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        ReferenceSimulator::recent_evictions(self, window)
    }
    fn fault_stats(&self) -> FaultStats {
        ReferenceSimulator::fault_stats(self)
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        ReferenceSimulator::job_faults(self, id)
    }
    fn pool_free(&self) -> Vec<u32> {
        ReferenceSimulator::pool_free(self)
    }
    fn pool_total(&self) -> Vec<u32> {
        ReferenceSimulator::pool_total(self)
    }
    fn hetero_stats(&self) -> HeteroStats {
        ReferenceSimulator::hetero_stats(self)
    }
    fn contended_running(&self) -> u32 {
        ReferenceSimulator::contended_running(self)
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        ReferenceSimulator::load_trace(self, jobs);
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        ReferenceSimulator::submit(self, job)
    }
    fn sample(&self) -> ClusterSnapshot {
        ReferenceSimulator::sample(self)
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        ReferenceSimulator::sample_into(self, out);
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        self.job_status(id)
    }
    fn step(&mut self, dt: i64) {
        ReferenceSimulator::step(self, dt);
    }
    fn run_until(&mut self, t_end: i64) {
        ReferenceSimulator::run_until(self, t_end);
    }
    fn run_to_completion(&mut self) {
        ReferenceSimulator::run_to_completion(self);
    }
    fn is_active(&self) -> bool {
        ReferenceSimulator::is_active(self)
    }
    fn completed(&self) -> Vec<JobRecord> {
        ReferenceSimulator::completed(self)
    }
    fn metrics(&self) -> SimMetrics {
        ReferenceSimulator::metrics(self)
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        ReferenceSimulator::avg_recent_wait(self, window)
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        ReferenceSimulator::user_usage(self, user)
    }
    fn reset(&mut self) {
        ReferenceSimulator::reset(self);
    }
}

/// Value-level backend selection for [`SimBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The fast event-driven [`Simulator`] (Mirage trains against this).
    EventDriven,
    /// The tick-driven [`ReferenceSimulator`] (§5.2 fidelity baseline).
    Tick,
    /// A [`BackendPool`] of `workers` independently seeded event-driven
    /// backends for parallel collection; [`SimBuilder::build`] yields one
    /// event-driven backend, [`SimBuilder::build_pool`] yields the pool.
    Pooled {
        /// Worker-thread (and backend-instance) count.
        workers: usize,
    },
}

/// Either concrete simulator behind one value (enum dispatch), so binaries
/// and tests can pick a backend from configuration instead of from types.
#[derive(Debug)]
pub enum AnyBackend {
    /// Fast event-driven simulator.
    Event(Simulator),
    /// Tick-driven reference simulator.
    Tick(ReferenceSimulator),
}

macro_rules! any_dispatch {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            AnyBackend::Event($b) => $e,
            AnyBackend::Tick($b) => $e,
        }
    };
}

impl ClusterBackend for AnyBackend {
    fn now(&self) -> i64 {
        any_dispatch!(self, b => b.now())
    }
    fn total_nodes(&self) -> u32 {
        any_dispatch!(self, b => b.total_nodes())
    }
    fn free_nodes(&self) -> u32 {
        any_dispatch!(self, b => b.free_nodes())
    }
    fn available_nodes(&self) -> u32 {
        any_dispatch!(self, b => b.available_nodes())
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        any_dispatch!(self, b => b.recent_evictions(window))
    }
    fn fault_stats(&self) -> FaultStats {
        any_dispatch!(self, b => b.fault_stats())
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        any_dispatch!(self, b => b.job_faults(id))
    }
    fn pool_free(&self) -> Vec<u32> {
        any_dispatch!(self, b => b.pool_free())
    }
    fn pool_total(&self) -> Vec<u32> {
        any_dispatch!(self, b => b.pool_total())
    }
    fn hetero_stats(&self) -> HeteroStats {
        any_dispatch!(self, b => b.hetero_stats())
    }
    fn contended_running(&self) -> u32 {
        any_dispatch!(self, b => b.contended_running())
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        any_dispatch!(self, b => b.load_trace(jobs));
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        any_dispatch!(self, b => b.submit(job))
    }
    fn sample(&self) -> ClusterSnapshot {
        any_dispatch!(self, b => b.sample())
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        any_dispatch!(self, b => b.sample_into(out))
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        any_dispatch!(self, b => b.job_status(id))
    }
    fn step(&mut self, dt: i64) {
        any_dispatch!(self, b => b.step(dt));
    }
    fn run_until(&mut self, t_end: i64) {
        any_dispatch!(self, b => b.run_until(t_end));
    }
    fn run_to_completion(&mut self) {
        any_dispatch!(self, b => b.run_to_completion());
    }
    fn is_active(&self) -> bool {
        any_dispatch!(self, b => b.is_active())
    }
    fn completed(&self) -> Vec<JobRecord> {
        any_dispatch!(self, b => b.completed())
    }
    fn metrics(&self) -> SimMetrics {
        any_dispatch!(self, b => b.metrics())
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        any_dispatch!(self, b => b.avg_recent_wait(window))
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        any_dispatch!(self, b => b.user_usage(user))
    }
    fn reset(&mut self) {
        any_dispatch!(self, b => b.reset());
    }
}

/// Seeded construction of fresh backends, used by [`BackendPool`] to give
/// every worker its own independent instance.
pub trait BackendFactory: Sync {
    /// The backend type this factory builds.
    type Backend: ClusterBackend + Send;

    /// Builds a fresh idle backend for the given seed.
    fn build(&self, seed: u64) -> Self::Backend;
}

impl<B, F> BackendFactory for F
where
    B: ClusterBackend + Send,
    F: Fn(u64) -> B + Sync,
{
    type Backend = B;

    fn build(&self, seed: u64) -> B {
        self(seed)
    }
}

/// Builder-style simulator configuration with value-level backend
/// selection; entry point: [`SimConfig::builder`].
#[derive(Debug, Clone)]
pub struct SimBuilder {
    nodes: u32,
    seed: u64,
    weights: PriorityWeights,
    backfill: BackfillPolicy,
    reject_oversized: bool,
    sched_depth: usize,
    kind: BackendKind,
    tick: i64,
    sched_interval: i64,
    backfill_interval: i64,
    faults: FaultModel,
    retry: RetryPolicy,
    hetero: HeteroModel,
}

impl Default for SimBuilder {
    fn default() -> Self {
        let sim = SimConfig::new(1);
        let reference = ReferenceConfig::new(1);
        Self {
            nodes: 1,
            seed: 0,
            weights: sim.weights,
            backfill: sim.backfill,
            reject_oversized: sim.reject_oversized,
            sched_depth: sim.sched_depth,
            kind: BackendKind::EventDriven,
            tick: reference.tick,
            sched_interval: reference.sched_interval,
            backfill_interval: reference.backfill_interval,
            faults: FaultModel::none(),
            retry: RetryPolicy::default(),
            hetero: HeteroModel::none(),
        }
    }
}

impl SimBuilder {
    /// Partition size.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Base seed for [`build_pool`](Self::build_pool) workers. Replay is
    /// deterministic for any fixed seed; with fault injection enabled
    /// ([`SimBuilder::faults`]) each pool worker derives its own fault
    /// stream from this seed, so workers see independent (but replayable)
    /// crash tapes.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fault injection model shared by whichever backend is built.
    /// [`FaultModel::none`] (the default) injects nothing.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Retry policy for evicted / failed jobs.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Heterogeneous node-pool model shared by whichever backend is
    /// built. [`HeteroModel::none`] (the default) keeps the partition
    /// homogeneous. Unlike the fault seed, the hetero seed is *not* split
    /// per pool worker: placement draws are keyed per job id, and the
    /// evaluation lanes want every method to face the identical hardware.
    pub fn hetero(mut self, hetero: HeteroModel) -> Self {
        self.hetero = hetero;
        self
    }

    /// Multifactor priority weights.
    pub fn weights(mut self, weights: PriorityWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Backfill flavor.
    pub fn backfill(mut self, backfill: BackfillPolicy) -> Self {
        self.backfill = backfill;
        self
    }

    /// Whether oversized jobs are rejected on arrival.
    pub fn reject_oversized(mut self, reject: bool) -> Self {
        self.reject_oversized = reject;
        self
    }

    /// Scheduling-pass depth (`bf_max_job_test`).
    pub fn sched_depth(mut self, depth: usize) -> Self {
        self.sched_depth = depth;
        self
    }

    /// Which backend [`build`](Self::build) produces.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Tick length of the tick-driven backend, seconds.
    pub fn tick(mut self, tick: i64) -> Self {
        self.tick = tick;
        self
    }

    /// Main scheduling cadence of the tick-driven backend, seconds.
    pub fn sched_interval(mut self, interval: i64) -> Self {
        self.sched_interval = interval;
        self
    }

    /// Backfill cadence of the tick-driven backend, seconds.
    pub fn backfill_interval(mut self, interval: i64) -> Self {
        self.backfill_interval = interval;
        self
    }

    /// The event-driven configuration this builder describes.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            nodes: self.nodes,
            weights: self.weights,
            backfill: self.backfill,
            reject_oversized: self.reject_oversized,
            sched_depth: self.sched_depth,
            faults: self.faults,
            retry: self.retry,
            hetero: self.hetero.clone(),
        }
    }

    /// The tick-driven configuration this builder describes.
    pub fn reference_config(&self) -> ReferenceConfig {
        ReferenceConfig {
            nodes: self.nodes,
            weights: self.weights,
            sched_interval: self.sched_interval,
            backfill_interval: self.backfill_interval,
            backfill: self.backfill,
            tick: self.tick,
            faults: self.faults,
            retry: self.retry,
            hetero: self.hetero.clone(),
        }
    }

    /// Builds the selected backend ([`BackendKind::Pooled`] yields one
    /// event-driven instance; use [`build_pool`](Self::build_pool) for the
    /// fan-out). Panics with the [`SimConfigError`] message on an invalid
    /// configuration — use [`try_build`](Self::try_build) to handle it.
    pub fn build(&self) -> AnyBackend {
        self.try_build()
            .unwrap_or_else(|e| panic!("SimBuilder::build: {e}"))
    }

    /// Builds the selected backend after validating every numeric field
    /// (partition size, cadences, fault and retry parameters), so a NaN
    /// failure probability or negative MTBF is a typed error here instead
    /// of a garbage fault tape mid-run.
    pub fn try_build(&self) -> Result<AnyBackend, SimConfigError> {
        match self.kind {
            BackendKind::Tick => {
                let cfg = self.reference_config();
                cfg.validate()?;
                Ok(AnyBackend::Tick(ReferenceSimulator::new(cfg)))
            }
            BackendKind::EventDriven | BackendKind::Pooled { .. } => {
                let cfg = self.sim_config();
                cfg.validate()?;
                Ok(AnyBackend::Event(Simulator::new(cfg)))
            }
        }
    }

    /// Builds the selected backend with `trace` pre-loaded.
    pub fn from_trace(&self, trace: &[JobRecord]) -> AnyBackend {
        let mut backend = self.build();
        backend.load_trace(trace);
        backend
    }

    /// Builds a pool of independently seeded backends; worker count comes
    /// from [`BackendKind::Pooled`] or defaults to the available
    /// parallelism.
    pub fn build_pool(&self) -> BackendPool<SimBuilder> {
        let workers = match self.kind {
            BackendKind::Pooled { workers } => workers,
            _ => default_workers(),
        };
        BackendPool::with_seed(self.clone(), workers, self.seed)
    }
}

impl BackendFactory for SimBuilder {
    type Backend = AnyBackend;

    fn build(&self, seed: u64) -> AnyBackend {
        // Replay is deterministic for any fixed seed. With fault injection
        // enabled, each pool worker derives its own crash/failure stream
        // from the builder's fault seed and the worker's seed, so workers
        // explore independent fault schedules while any single worker
        // stays exactly replayable.
        if self.faults.is_none() {
            return SimBuilder::build(self);
        }
        let mut with_worker_faults = self.clone();
        with_worker_faults.faults.seed = split_seed(self.faults.seed, seed);
        SimBuilder::build(&with_worker_faults)
    }
}

impl SimConfig {
    /// Starts a builder with this crate's defaults.
    pub fn builder() -> SimBuilder {
        SimBuilder::default()
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .clamp(1, 16)
}

/// Maximum times one task is attempted before the pool gives up and
/// propagates the panic (1 initial try + 2 retries).
pub const MAX_TASK_ATTEMPTS: u32 = 3;

/// Cumulative supervision counters of one [`BackendPool`] (monotone
/// across [`BackendPool::map`] calls; snapshot via
/// [`BackendPool::health`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolHealth {
    /// Task executions that panicked (caught by the supervisor).
    pub panics: u64,
    /// Tasks re-queued for another attempt after a panic.
    pub retries: u64,
    /// Worker backends rebuilt from the factory after a panic poisoned
    /// their state.
    pub rebuilds: u64,
    /// Tasks that produced a result (retried tasks count once).
    pub completed: u64,
}

#[derive(Debug, Default)]
struct PoolHealthCounters {
    panics: AtomicU64,
    retries: AtomicU64,
    rebuilds: AtomicU64,
    completed: AtomicU64,
}

impl PoolHealthCounters {
    fn snapshot(&self) -> PoolHealth {
        PoolHealth {
            panics: self.panics.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
        }
    }
}

/// Deterministic panic injection for supervision tests: the listed task
/// indices panic on their *first* attempt (each index fires once, then
/// is spent), so a seeded plan exercises the catch-unwind / rebuild /
/// retry path reproducibly — and, because retried tasks run on freshly
/// rebuilt backends, a planned run's results are identical to a
/// panic-free run's.
#[derive(Debug, Clone, Default)]
pub struct PanicPlan {
    tasks: Vec<usize>,
}

impl PanicPlan {
    /// Panic on the first attempt of exactly these task indices.
    pub fn tasks(tasks: impl IntoIterator<Item = usize>) -> Self {
        Self {
            tasks: tasks.into_iter().collect(),
        }
    }

    /// `count` distinct task indices drawn deterministically from
    /// `seed` over `0..n_tasks`.
    pub fn seeded(seed: u64, n_tasks: usize, count: usize) -> Self {
        let mut tasks: Vec<usize> = Vec::new();
        if n_tasks == 0 {
            return Self { tasks };
        }
        let mut stream = 0u64;
        while tasks.len() < count.min(n_tasks) {
            let i = (split_seed(seed, stream) % n_tasks as u64) as usize;
            if !tasks.contains(&i) {
                tasks.push(i);
            }
            stream += 1;
        }
        Self { tasks }
    }

    /// The task indices this plan will panic on.
    pub fn indices(&self) -> &[usize] {
        &self.tasks
    }
}

/// Recovers the inner value of a possibly poisoned mutex: the pool's
/// slot writes are all-or-nothing (`*guard = Some(r)`), so a poisoned
/// result slot still holds a coherent value — recover it instead of
/// cascading the panic into the collector.
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// N independently seeded backends fanned out over std threads.
///
/// Tasks are claimed from a shared cursor, every worker drives its own
/// backend built by the factory (seeded `base_seed ^ worker_index`), and
/// results land at their task's index — so the output is identical to a
/// sequential run over the same tasks, whatever the thread interleaving.
///
/// Workers are supervised: a panicking task is caught, the worker's
/// backend is rebuilt from the factory (panic-poisoned simulator state
/// must not leak into later tasks), and the task is re-queued with a
/// small backoff for up to [`MAX_TASK_ATTEMPTS`] attempts before the
/// panic is propagated. [`BackendPool::health`] exposes the counters.
pub struct BackendPool<F: BackendFactory> {
    factory: F,
    workers: usize,
    base_seed: u64,
    health: PoolHealthCounters,
    panic_plan: Mutex<HashSet<usize>>,
}

impl<F: BackendFactory> BackendPool<F> {
    /// Pool of `workers` backends with seed 0.
    pub fn new(factory: F, workers: usize) -> Self {
        Self::with_seed(factory, workers, 0)
    }

    /// Pool of `workers` backends derived from `base_seed`.
    pub fn with_seed(factory: F, workers: usize, base_seed: u64) -> Self {
        Self {
            factory,
            workers: workers.max(1),
            base_seed,
            health: PoolHealthCounters::default(),
            panic_plan: Mutex::new(HashSet::new()),
        }
    }

    /// Worker (= backend instance) count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Snapshot of the supervision counters (cumulative over this
    /// pool's lifetime).
    pub fn health(&self) -> PoolHealth {
        self.health.snapshot()
    }

    /// Arms deterministic panic injection for the next
    /// [`BackendPool::map`] call(s): each planned index fires once, on
    /// that task's first attempt. Supervision-test hook.
    pub fn inject_panics(&mut self, plan: PanicPlan) {
        *lock_recovering(&self.panic_plan) = plan.tasks.into_iter().collect();
    }

    /// Builds one backend outside the pool (worker index 0's seed).
    pub fn build_one(&self) -> F::Backend {
        self.factory.build(self.base_seed)
    }

    /// Builds every worker's backend (seeded `base_seed ^ index`, exactly
    /// as [`BackendPool::map`] seeds its threads) as one vector — the
    /// construction path for lockstep drivers that step all instances in
    /// a single thread instead of fanning tasks out.
    pub fn build_all(&self) -> Vec<F::Backend> {
        self.build_n(self.workers)
    }

    /// Builds the first `n` workers' backends (seeded exactly as
    /// [`BackendPool::build_all`]) — the construction path for lockstep
    /// training windows, whose final window is usually narrower than the
    /// pool. `n` may exceed the worker count; lockstep instances are
    /// stepped by one thread, so the pool's width only namespaces seeds.
    pub fn build_n(&self, n: usize) -> Vec<F::Backend> {
        self.build_range(0, n)
    }

    /// Builds the backends of lane slots `first .. first + n` (seeded
    /// `base_seed ^ slot`, exactly as [`BackendPool::build_n`] seeds the
    /// same slots) — the construction path for a *sub*-window of a wider
    /// lockstep window: `W` training workers each building their
    /// contiguous lane range get, collectively, the identical backend
    /// sequence one worker building the whole window would.
    pub fn build_range(&self, first: usize, n: usize) -> Vec<F::Backend> {
        (first..first + n)
            .map(|w| self.factory.build(self.base_seed ^ (w as u64)))
            .collect()
    }

    /// Runs `f` once per task across the pool's backends and returns the
    /// results in task order. `f` must leave the backend reusable (the
    /// episode driver resets it), which is what makes results independent
    /// of the task-to-worker assignment.
    ///
    /// Tasks are supervised: a panic inside `f` is caught, the worker's
    /// backend is rebuilt from the factory, and the task is re-queued
    /// (with a small backoff) until it succeeds or exhausts
    /// [`MAX_TASK_ATTEMPTS`], at which point the panic is propagated to
    /// the caller with the task index and attempt count.
    pub fn map<T, R, G>(&self, tasks: &[T], f: G) -> Vec<R>
    where
        T: Sync,
        R: Send,
        G: Fn(&mut F::Backend, &T) -> R + Sync,
    {
        let workers = self.workers.min(tasks.len()).max(1);
        let cursor = AtomicUsize::new(0);
        let retry_queue: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let attempts: Vec<AtomicU32> = (0..tasks.len()).map(|_| AtomicU32::new(0)).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
        type PanicPayload = Box<dyn std::any::Any + Send>;
        let fatal: Mutex<Option<(usize, u32, PanicPayload)>> = Mutex::new(None);

        std::thread::scope(|scope| {
            for w in 0..workers {
                let cursor = &cursor;
                let retry_queue = &retry_queue;
                let attempts = &attempts;
                let slots = &slots;
                let fatal = &fatal;
                let f = &f;
                let factory = &self.factory;
                let health = &self.health;
                let panic_plan = &self.panic_plan;
                let seed = self.base_seed ^ (w as u64);
                scope.spawn(move || {
                    let mut backend = factory.build(seed);
                    loop {
                        if lock_recovering(fatal).is_some() {
                            break;
                        }
                        // Retried tasks take priority over fresh ones, so
                        // a crashed task finishes close to where it would
                        // have. If a panic pushes a retry *after* another
                        // worker saw an empty queue and exited, the
                        // pushing worker is still alive (it caught its own
                        // unwind) and claims the retry on its next pass —
                        // retries are never orphaned.
                        let (i, is_retry) = match lock_recovering(retry_queue).pop() {
                            Some(i) => (i, true),
                            None => {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= tasks.len() {
                                    break;
                                }
                                (i, false)
                            }
                        };
                        if is_retry {
                            let prior = attempts[i].load(Ordering::Relaxed);
                            let backoff_ms = 1u64 << prior.min(3);
                            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                        }
                        let inject = lock_recovering(panic_plan).remove(&i);
                        let outcome = if inject {
                            catch_unwind(|| -> R { panic!("injected panic (task {i})") })
                        } else {
                            catch_unwind(AssertUnwindSafe(|| f(&mut backend, &tasks[i])))
                        };
                        match outcome {
                            Ok(r) => {
                                *lock_recovering(&slots[i]) = Some(r);
                                health.completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(payload) => {
                                health.panics.fetch_add(1, Ordering::Relaxed);
                                // The unwind may have left the simulator
                                // mid-step; rebuild from the factory with
                                // the same seed so later tasks on this
                                // worker see pristine state.
                                backend = factory.build(seed);
                                health.rebuilds.fetch_add(1, Ordering::Relaxed);
                                let made = attempts[i].fetch_add(1, Ordering::Relaxed) + 1;
                                if made < MAX_TASK_ATTEMPTS {
                                    health.retries.fetch_add(1, Ordering::Relaxed);
                                    lock_recovering(retry_queue).push(i);
                                } else {
                                    let mut g = lock_recovering(fatal);
                                    if g.is_none() {
                                        *g = Some((i, made, payload));
                                    }
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });

        if let Some((i, made, payload)) = fatal
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
        {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("pool task {i} panicked on all {made} attempts; giving up (last panic: {msg})");
        }
        slots
            .into_iter()
            .map(|slot| {
                // Recover the value from a poisoned slot: the write is
                // all-or-nothing, so a poisoned mutex still holds a
                // coherent result (satellite of the supervision work —
                // the collector must not cascade a worker's panic).
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("every task index was claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::HOUR;

    fn job(id: u64, submit: i64, nodes: u32, runtime: i64, limit: i64) -> JobRecord {
        JobRecord::new(id, format!("j{id}"), 1, submit, nodes, limit, runtime)
    }

    fn small_trace() -> Vec<JobRecord> {
        (0..12)
            .map(|i| job(i + 1, i as i64 * 900, 1 + (i % 3) as u32, HOUR, 2 * HOUR))
            .collect()
    }

    fn drive<B: ClusterBackend>(backend: &mut B) -> usize {
        backend.reset_with(&small_trace());
        backend.run_to_completion();
        backend.completed().len()
    }

    #[test]
    fn both_backends_complete_the_same_trace_through_the_trait() {
        let mut fast = Simulator::new(SimConfig::new(4));
        let mut reference = ReferenceSimulator::new(ReferenceConfig::new(4));
        assert_eq!(drive(&mut fast), 12);
        assert_eq!(drive(&mut reference), 12);
    }

    #[test]
    fn builder_selects_backends_by_value() {
        let event = SimConfig::builder().nodes(8).build();
        assert!(matches!(event, AnyBackend::Event(_)));
        let tick = SimConfig::builder()
            .nodes(8)
            .backend(BackendKind::Tick)
            .build();
        assert!(matches!(tick, AnyBackend::Tick(_)));
        let mut any = SimConfig::builder()
            .nodes(4)
            .backend(BackendKind::Tick)
            .tick(60)
            .sched_interval(60)
            .from_trace(&small_trace());
        assert_eq!(any.total_nodes(), 4);
        any.run_to_completion();
        assert_eq!(any.completed().len(), 12);
    }

    #[test]
    fn builder_carries_scheduling_options() {
        let b = SimConfig::builder()
            .nodes(16)
            .backfill(BackfillPolicy::None)
            .sched_depth(7)
            .reject_oversized(false);
        assert_eq!(b.sim_config().nodes, 16);
        assert_eq!(b.sim_config().sched_depth, 7);
        assert!(!b.sim_config().reject_oversized);
        assert_eq!(b.sim_config().backfill, BackfillPolicy::None);
        assert_eq!(b.reference_config().backfill, BackfillPolicy::None);
    }

    #[test]
    fn trait_objects_and_reborrows_compose() {
        // `&mut B` forwards the whole trait, so generic drivers can take
        // either owned backends or reborrows.
        let mut sim = Simulator::new(SimConfig::new(4));
        let reborrow: &mut Simulator = &mut sim;
        assert_eq!(drive(&mut { reborrow }), 12);
    }

    #[test]
    fn pool_map_preserves_task_order_and_matches_sequential() {
        let builder = SimConfig::builder().nodes(4).seed(9);
        let tasks: Vec<i64> = (0..23).map(|i| i * HOUR).collect();
        let run = |backend: &mut AnyBackend, &t: &i64| -> (i64, usize) {
            backend.reset_with(&small_trace());
            backend.run_until(t);
            (
                t,
                backend.sample().running.len() + backend.completed().len(),
            )
        };
        let sequential = BackendPool::with_seed(builder.clone(), 1, 9).map(&tasks, run);
        let pooled = BackendPool::with_seed(builder, 6, 9).map(&tasks, run);
        assert_eq!(sequential, pooled);
        // Results are in task order.
        for (i, (t, _)) in pooled.iter().enumerate() {
            assert_eq!(*t, tasks[i]);
        }
    }

    #[test]
    fn pool_handles_more_workers_than_tasks() {
        let pool = SimConfig::builder()
            .nodes(2)
            .backend(BackendKind::Pooled { workers: 8 })
            .build_pool();
        assert_eq!(pool.workers(), 8);
        let out = pool.map(&[1u32], |backend, &x| {
            backend.reset();
            x + backend.total_nodes()
        });
        assert_eq!(out, vec![3]);
        let empty: Vec<u32> = pool.map(&[], |_, &x: &u32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn user_usage_ledgers_agree_with_the_default_derivation() {
        // Tag two users' jobs into one cluster; both backends' fast
        // ledgers must match the trait's sample()+completed() derivation
        // mid-run (mixed queued/running/completed state) and at the end.
        let trace: Vec<JobRecord> = (0..10)
            .map(|i| {
                let mut j = job(
                    i + 1,
                    i as i64 * 600,
                    1 + (i % 2) as u32,
                    2 * HOUR,
                    4 * HOUR,
                );
                j.user = if i % 3 == 0 { 7 } else { 8 };
                j
            })
            .collect();
        let default_of = |b: &AnyBackend, user: u32| -> ServiceUsage {
            // Re-derive through the trait default by viewing the backend
            // as a bare ClusterBackend without the override.
            struct Plain<'a>(&'a AnyBackend);
            impl ClusterBackend for Plain<'_> {
                fn now(&self) -> i64 {
                    self.0.now()
                }
                fn total_nodes(&self) -> u32 {
                    self.0.total_nodes()
                }
                fn free_nodes(&self) -> u32 {
                    self.0.free_nodes()
                }
                fn load_trace(&mut self, _jobs: &[JobRecord]) {}
                fn submit(&mut self, _job: JobRecord) -> u64 {
                    0
                }
                fn sample(&self) -> ClusterSnapshot {
                    self.0.sample()
                }
                fn status(&self, id: u64) -> Option<JobStatus> {
                    self.0.status(id)
                }
                fn step(&mut self, _dt: i64) {}
                fn run_until(&mut self, _t_end: i64) {}
                fn run_to_completion(&mut self) {}
                fn is_active(&self) -> bool {
                    self.0.is_active()
                }
                fn completed(&self) -> Vec<JobRecord> {
                    self.0.completed()
                }
                fn metrics(&self) -> SimMetrics {
                    self.0.metrics()
                }
                fn avg_recent_wait(&self, window: i64) -> Option<f64> {
                    self.0.avg_recent_wait(window)
                }
                fn reset(&mut self) {}
            }
            Plain(b).user_usage(user)
        };
        for kind in [BackendKind::EventDriven, BackendKind::Tick] {
            let mut b = SimConfig::builder().nodes(2).backend(kind).build();
            b.reset_with(&trace);
            b.run_until(3 * HOUR);
            for user in [7u32, 8, 99] {
                assert_eq!(b.user_usage(user), default_of(&b, user), "{kind:?} mid-run");
            }
            b.run_to_completion();
            let u7 = b.user_usage(7);
            let u8 = b.user_usage(8);
            assert_eq!(u7.completed + u8.completed, 10, "{kind:?}");
            assert_eq!(u7.queued + u7.running, 0, "{kind:?}");
            assert!(u7.node_seconds > 0.0 && u8.node_seconds > 0.0, "{kind:?}");
            assert!(u7.avg_wait().is_some());
            assert!(b.user_usage(99).is_idle());
            for user in [7u32, 8] {
                assert_eq!(b.user_usage(user), default_of(&b, user), "{kind:?} final");
            }
        }
    }

    #[test]
    fn builder_carries_fault_and_retry_options_to_both_backends() {
        let retry = RetryPolicy {
            max_attempts: 5,
            backoff_base: 30,
            backoff_cap: 600,
        };
        let b = SimConfig::builder()
            .nodes(8)
            .faults(FaultModel::moderate(3))
            .retry(retry);
        assert_eq!(b.sim_config().faults, FaultModel::moderate(3));
        assert_eq!(b.sim_config().retry, retry);
        assert_eq!(b.reference_config().faults, FaultModel::moderate(3));
        assert_eq!(b.reference_config().retry, retry);
        // Default builder injects nothing.
        assert!(SimConfig::builder().sim_config().faults.is_none());
    }

    #[test]
    fn pool_workers_get_split_fault_seeds() {
        let builder = SimConfig::builder()
            .nodes(4)
            .seed(5)
            .faults(FaultModel::severe(42));
        let fault_seed_of = |b: &AnyBackend| match b {
            AnyBackend::Event(sim) => sim.config().faults.seed,
            AnyBackend::Tick(sim) => sim.config().faults.seed,
        };
        let w0 = BackendFactory::build(&builder, 5);
        let w1 = BackendFactory::build(&builder, 5 ^ 1);
        assert_ne!(
            fault_seed_of(&w0),
            fault_seed_of(&w1),
            "workers explore independent fault streams"
        );
        // Same worker seed → same derived stream (replayable).
        let w0_again = BackendFactory::build(&builder, 5);
        assert_eq!(fault_seed_of(&w0), fault_seed_of(&w0_again));
        // Without faults, the factory leaves the config untouched.
        let plain = SimConfig::builder().nodes(4);
        let p = BackendFactory::build(&plain, 99);
        assert!(fault_seed_of(&p) == 0 && plain.sim_config().faults.is_none());
    }

    #[test]
    fn closure_factories_build_custom_backends() {
        let factory = |_seed: u64| Simulator::new(SimConfig::new(3));
        let pool = BackendPool::new(factory, 2);
        let totals = pool.map(&[0u8, 1, 2], |b, _| b.total_nodes());
        assert_eq!(totals, vec![3, 3, 3]);
    }

    #[test]
    fn seeded_panics_are_recovered_and_results_match_panic_free() {
        // Fault-free builder: worker backends differ only by seed, and a
        // rebuilt worker replays the exact same stream — so a run with
        // injected panics must produce bit-identical results to a clean
        // run, with the incidents visible only in the health counters.
        let builder = SimConfig::builder().nodes(4).seed(9);
        let tasks: Vec<i64> = (0..17).map(|i| i * HOUR).collect();
        let run = |backend: &mut AnyBackend, &t: &i64| -> (i64, usize) {
            backend.reset_with(&small_trace());
            backend.run_until(t);
            (
                t,
                backend.sample().running.len() + backend.completed().len(),
            )
        };
        let clean = BackendPool::with_seed(builder.clone(), 4, 9).map(&tasks, run);

        let plan = PanicPlan::seeded(77, tasks.len(), 5);
        let injected = plan.indices().len() as u64;
        assert_eq!(injected, 5, "seeded plan draws the requested count");
        let mut pool = BackendPool::with_seed(builder, 4, 9);
        pool.inject_panics(plan);
        let supervised = pool.map(&tasks, run);

        assert_eq!(clean, supervised, "recovery does not perturb results");
        let health = pool.health();
        assert_eq!(health.panics, injected);
        assert_eq!(health.retries, injected, "first-attempt panics all retry");
        assert_eq!(health.rebuilds, injected);
        assert_eq!(health.completed, tasks.len() as u64);
    }

    #[test]
    fn seeded_panic_plans_are_deterministic_and_distinct() {
        let a = PanicPlan::seeded(3, 10, 4);
        let b = PanicPlan::seeded(3, 10, 4);
        assert_eq!(a.indices(), b.indices());
        assert_eq!(a.indices().len(), 4);
        for (n, &i) in a.indices().iter().enumerate() {
            assert!(i < 10);
            assert!(!a.indices()[..n].contains(&i), "indices are distinct");
        }
        // Requesting more panics than tasks saturates instead of spinning.
        assert_eq!(PanicPlan::seeded(3, 2, 9).indices().len(), 2);
        assert!(PanicPlan::seeded(3, 0, 9).indices().is_empty());
    }

    #[test]
    #[should_panic(expected = "panicked on all 3 attempts")]
    fn exhausted_retries_propagate_with_context() {
        // A task that fails deterministically (every attempt, any worker)
        // must surface as a panic naming the task, not hang or silently
        // drop the result.
        let factory = |_seed: u64| Simulator::new(SimConfig::new(2));
        let pool = BackendPool::new(factory, 3);
        pool.map(&[0usize, 1, 2, 3], |_, &i| {
            if i == 2 {
                panic!("task {i} is cursed");
            }
            i
        });
    }

    #[test]
    fn try_build_rejects_unsound_configs_with_typed_errors() {
        // Valid configs build on every backend kind.
        for kind in [
            BackendKind::EventDriven,
            BackendKind::Tick,
            BackendKind::Pooled { workers: 2 },
        ] {
            assert!(SimConfig::builder()
                .nodes(2)
                .backend(kind)
                .try_build()
                .is_ok());
        }
        // NaN failure probability is a typed error, not a NaN fault tape.
        let nan_faults = FaultModel {
            job_fail_prob: f64::NAN,
            ..FaultModel::moderate(1)
        };
        let err = SimConfig::builder()
            .nodes(2)
            .faults(nan_faults)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "faults.job_fail_prob");
        // The tick backend additionally validates its cadences.
        let err = SimConfig::builder()
            .nodes(2)
            .backend(BackendKind::Tick)
            .tick(0)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "tick");
        // Hetero misconfigurations are typed errors on both backends: an
        // enabled model with no pools, a non-positive throughput, and pool
        // totals disagreeing with the partition size.
        let empty_pools = HeteroModel::with_pools(Vec::new(), 0.5, 1);
        let err = SimConfig::builder()
            .nodes(2)
            .hetero(empty_pools.clone())
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "hetero.pools");
        let err = SimConfig::builder()
            .nodes(2)
            .backend(BackendKind::Tick)
            .hetero(empty_pools)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "hetero.pools");
        let bad_thr =
            HeteroModel::with_pools(vec![crate::hetero::NodePool::new("p", 2, 0.0)], 0.5, 1);
        let err = SimConfig::builder()
            .nodes(2)
            .hetero(bad_thr)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "hetero.pools.throughput");
        let wrong_sum =
            HeteroModel::with_pools(vec![crate::hetero::NodePool::new("p", 3, 1.0)], 0.5, 1);
        let err = SimConfig::builder()
            .nodes(2)
            .hetero(wrong_sum)
            .try_build()
            .unwrap_err();
        assert_eq!(err.field, "hetero.pools");
        // A sound hetero model builds fine on both backends.
        for kind in [BackendKind::EventDriven, BackendKind::Tick] {
            assert!(SimConfig::builder()
                .nodes(8)
                .backend(kind)
                .hetero(HeteroModel::balanced(8, 3))
                .try_build()
                .is_ok());
        }
        // An empty partition fails on either backend.
        assert!(SimConfig::builder().nodes(0).try_build().is_err());
        assert_eq!(
            SimConfig::new(0).validate().unwrap_err().field,
            "nodes",
            "SimConfig::validate is usable standalone"
        );
    }

    #[test]
    #[should_panic(expected = "invalid simulator config: faults.mtbf")]
    fn build_panics_with_the_typed_message() {
        let bad = FaultModel {
            mtbf: -1,
            ..FaultModel::moderate(1)
        };
        let _ = SimConfig::builder().nodes(2).faults(bad).build();
    }

    #[test]
    fn poisoned_mutexes_yield_their_value() {
        // Satellite: the collector recovers the inner value from a
        // poisoned slot instead of cascading the worker's panic.
        let slot: std::sync::Arc<Mutex<Option<u32>>> = std::sync::Arc::new(Mutex::new(Some(41)));
        let poisoner = std::sync::Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock");
            panic!("poison the slot");
        })
        .join();
        assert!(slot.is_poisoned());
        assert_eq!(*lock_recovering(&slot), Some(41));
    }
}
