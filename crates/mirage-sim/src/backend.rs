//! The [`ClusterBackend`] abstraction: one trait in front of every
//! simulator implementation.
//!
//! The Mirage agent's contract with the cluster is tiny — inject a job
//! ([`ClusterBackend::submit`]), observe the queue ([`ClusterBackend::sample`]),
//! advance time ([`ClusterBackend::step`]) — and nothing in the provisioning
//! stack should care *which* simulator honors it. This module makes that
//! official:
//!
//! * [`ClusterBackend`] — the trait, implemented by the event-driven
//!   [`Simulator`], the tick-driven [`ReferenceSimulator`] and the
//!   enum-dispatched [`AnyBackend`],
//! * [`SimBuilder`] (via [`SimConfig::builder`]) — value-level backend
//!   selection: `SimConfig::builder().nodes(64).seed(7)
//!   .backend(BackendKind::Tick).build()`,
//! * [`BackendFactory`] — seeded construction of fresh backends, for
//!   parallel collection,
//! * [`BackendPool`] — N independently seeded backends fanned out over
//!   std threads (the vendored `rayon` is sequential, so this is the
//!   workspace's real parallelism for episode collection).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mirage_trace::{split_seed, JobRecord};

use crate::fault::{FaultModel, FaultStats, JobFaults, RetryPolicy};
use crate::metrics::{ServiceUsage, SimMetrics};
use crate::reference::{ReferenceConfig, ReferenceSimulator};
use crate::simulator::{JobStatus, SimConfig, Simulator};
use crate::snapshot::ClusterSnapshot;
use crate::{BackfillPolicy, PriorityWeights};

/// A simulated cluster that the provisioning stack can drive.
///
/// Semantics shared by every implementation:
///
/// * time is monotone; [`step`](Self::step) ignores non-positive `dt`,
/// * [`submit`](Self::submit) overrides the job's submit time to *now* and
///   returns the id under which the backend tracks it (reassigned if the
///   requested id is 0 or already taken),
/// * [`reset`](Self::reset) returns to an idle cluster at time 0 with the
///   same configuration, so one backend value can host many episodes.
pub trait ClusterBackend {
    /// Current simulated time, seconds.
    fn now(&self) -> i64;

    /// Partition size.
    fn total_nodes(&self) -> u32;

    /// Idle node count.
    fn free_nodes(&self) -> u32;

    /// Nodes physically available right now (total minus crashed). The
    /// default assumes perfectly reliable hardware; fault-injecting
    /// backends override it.
    fn available_nodes(&self) -> u32 {
        self.total_nodes()
    }

    /// Fault evictions within the trailing `window` seconds (0 without
    /// fault injection).
    fn recent_evictions(&self, window: i64) -> u32 {
        let _ = window;
        0
    }

    /// Aggregate fault counters of the run so far (all zero without fault
    /// injection).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Per-job fault ledger by id (zero for unknown ids, untouched jobs,
    /// and backends without fault injection).
    fn job_faults(&self, id: u64) -> JobFaults {
        let _ = id;
        JobFaults::default()
    }

    /// Loads a trace of future arrivals (ids preserved when unique).
    fn load_trace(&mut self, jobs: &[JobRecord]);

    /// Submits a job *now*; returns its tracking id.
    fn submit(&mut self, job: JobRecord) -> u64;

    /// Observable cluster state at the current instant.
    fn sample(&self) -> ClusterSnapshot;

    /// Observable cluster state written into a caller-provided snapshot,
    /// reusing its `queued`/`running` vectors so the steady-state decision
    /// loop samples without allocating. The result must equal a fresh
    /// [`sample`](Self::sample) — stale contents of `out` are overwritten.
    /// The default just delegates; concrete backends override with a
    /// buffer-reusing implementation.
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        *out = self.sample();
    }

    /// Lifecycle status of a job by id.
    fn status(&self, id: u64) -> Option<JobStatus>;

    /// Advances simulated time by `dt` seconds (non-positive `dt` is a
    /// no-op rather than an event-order hazard).
    fn step(&mut self, dt: i64);

    /// Advances simulated time to `t_end`.
    fn run_until(&mut self, t_end: i64);

    /// Runs until no work remains.
    fn run_to_completion(&mut self);

    /// Whether queued, running or future work remains.
    fn is_active(&self) -> bool;

    /// Completed job records, in completion order.
    fn completed(&self) -> Vec<JobRecord>;

    /// Aggregate metrics of the run so far.
    fn metrics(&self) -> SimMetrics;

    /// Mean queue wait of jobs started within the trailing `window`
    /// seconds (`None` if nothing started).
    fn avg_recent_wait(&self, window: i64) -> Option<f64>;

    /// Per-user accounting: `user`'s queued/running footprint and
    /// completed consumption on this cluster. Multi-service provisioning
    /// tags each service's jobs with a distinct user id and reads its
    /// share of the shared queue through this ledger. The default derives
    /// it from [`sample`](Self::sample)/[`completed`](Self::completed)
    /// (allocating); the bundled backends override it with a single
    /// allocation-free pass over their job arenas.
    fn user_usage(&self, user: u32) -> ServiceUsage {
        let mut usage = ServiceUsage::empty(user);
        let snap = self.sample();
        for q in &snap.queued {
            if q.user == user {
                usage.queued += 1;
                usage.queued_nodes += u64::from(q.nodes);
            }
        }
        for r in &snap.running {
            if r.user == user {
                usage.running += 1;
                usage.running_nodes += u64::from(r.nodes);
            }
        }
        for job in self.completed() {
            if job.user != user {
                continue;
            }
            let (Some(start), Some(end)) = (job.start, job.end) else {
                continue;
            };
            usage.completed += 1;
            usage.node_seconds += f64::from(job.nodes) * (end - start) as f64;
            usage.wait_sum += start - job.submit;
        }
        usage
    }

    /// Returns to an idle cluster at time 0, keeping the configuration.
    fn reset(&mut self);

    /// Resets and immediately loads `trace` — the "fresh episode from a
    /// trace" constructor path.
    fn reset_with(&mut self, trace: &[JobRecord]) {
        self.reset();
        self.load_trace(trace);
    }
}

impl<T: ClusterBackend + ?Sized> ClusterBackend for &mut T {
    fn now(&self) -> i64 {
        (**self).now()
    }
    fn total_nodes(&self) -> u32 {
        (**self).total_nodes()
    }
    fn free_nodes(&self) -> u32 {
        (**self).free_nodes()
    }
    // Defaults do not forward: a reborrow must reach the underlying
    // backend's fault surface, not the reliable-hardware fallback.
    fn available_nodes(&self) -> u32 {
        (**self).available_nodes()
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        (**self).recent_evictions(window)
    }
    fn fault_stats(&self) -> FaultStats {
        (**self).fault_stats()
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        (**self).job_faults(id)
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        (**self).load_trace(jobs);
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        (**self).submit(job)
    }
    fn sample(&self) -> ClusterSnapshot {
        (**self).sample()
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        (**self).sample_into(out);
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        (**self).status(id)
    }
    fn step(&mut self, dt: i64) {
        (**self).step(dt);
    }
    fn run_until(&mut self, t_end: i64) {
        (**self).run_until(t_end);
    }
    fn run_to_completion(&mut self) {
        (**self).run_to_completion();
    }
    fn is_active(&self) -> bool {
        (**self).is_active()
    }
    fn completed(&self) -> Vec<JobRecord> {
        (**self).completed()
    }
    fn metrics(&self) -> SimMetrics {
        (**self).metrics()
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        (**self).avg_recent_wait(window)
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        (**self).user_usage(user)
    }
    fn reset(&mut self) {
        (**self).reset();
    }
}

impl ClusterBackend for Simulator {
    fn now(&self) -> i64 {
        Simulator::now(self)
    }
    fn total_nodes(&self) -> u32 {
        Simulator::total_nodes(self)
    }
    fn free_nodes(&self) -> u32 {
        Simulator::free_nodes(self)
    }
    fn available_nodes(&self) -> u32 {
        Simulator::available_nodes(self)
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        Simulator::recent_evictions(self, window)
    }
    fn fault_stats(&self) -> FaultStats {
        Simulator::fault_stats(self)
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        Simulator::job_faults(self, id)
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        Simulator::load_trace(self, jobs);
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        Simulator::submit(self, job)
    }
    fn sample(&self) -> ClusterSnapshot {
        Simulator::sample(self)
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        Simulator::sample_into(self, out);
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        self.job_status(id)
    }
    fn step(&mut self, dt: i64) {
        Simulator::step(self, dt);
    }
    fn run_until(&mut self, t_end: i64) {
        Simulator::run_until(self, t_end);
    }
    fn run_to_completion(&mut self) {
        Simulator::run_to_completion(self);
    }
    fn is_active(&self) -> bool {
        Simulator::is_active(self)
    }
    fn completed(&self) -> Vec<JobRecord> {
        Simulator::completed(self)
    }
    fn metrics(&self) -> SimMetrics {
        Simulator::metrics(self)
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        Simulator::avg_recent_wait(self, window)
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        Simulator::user_usage(self, user)
    }
    fn reset(&mut self) {
        Simulator::reset(self);
    }
}

impl ClusterBackend for ReferenceSimulator {
    fn now(&self) -> i64 {
        ReferenceSimulator::now(self)
    }
    fn total_nodes(&self) -> u32 {
        ReferenceSimulator::total_nodes(self)
    }
    fn free_nodes(&self) -> u32 {
        ReferenceSimulator::free_nodes(self)
    }
    fn available_nodes(&self) -> u32 {
        ReferenceSimulator::available_nodes(self)
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        ReferenceSimulator::recent_evictions(self, window)
    }
    fn fault_stats(&self) -> FaultStats {
        ReferenceSimulator::fault_stats(self)
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        ReferenceSimulator::job_faults(self, id)
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        ReferenceSimulator::load_trace(self, jobs);
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        ReferenceSimulator::submit(self, job)
    }
    fn sample(&self) -> ClusterSnapshot {
        ReferenceSimulator::sample(self)
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        ReferenceSimulator::sample_into(self, out);
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        self.job_status(id)
    }
    fn step(&mut self, dt: i64) {
        ReferenceSimulator::step(self, dt);
    }
    fn run_until(&mut self, t_end: i64) {
        ReferenceSimulator::run_until(self, t_end);
    }
    fn run_to_completion(&mut self) {
        ReferenceSimulator::run_to_completion(self);
    }
    fn is_active(&self) -> bool {
        ReferenceSimulator::is_active(self)
    }
    fn completed(&self) -> Vec<JobRecord> {
        ReferenceSimulator::completed(self)
    }
    fn metrics(&self) -> SimMetrics {
        ReferenceSimulator::metrics(self)
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        ReferenceSimulator::avg_recent_wait(self, window)
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        ReferenceSimulator::user_usage(self, user)
    }
    fn reset(&mut self) {
        ReferenceSimulator::reset(self);
    }
}

/// Value-level backend selection for [`SimBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The fast event-driven [`Simulator`] (Mirage trains against this).
    EventDriven,
    /// The tick-driven [`ReferenceSimulator`] (§5.2 fidelity baseline).
    Tick,
    /// A [`BackendPool`] of `workers` independently seeded event-driven
    /// backends for parallel collection; [`SimBuilder::build`] yields one
    /// event-driven backend, [`SimBuilder::build_pool`] yields the pool.
    Pooled {
        /// Worker-thread (and backend-instance) count.
        workers: usize,
    },
}

/// Either concrete simulator behind one value (enum dispatch), so binaries
/// and tests can pick a backend from configuration instead of from types.
#[derive(Debug)]
pub enum AnyBackend {
    /// Fast event-driven simulator.
    Event(Simulator),
    /// Tick-driven reference simulator.
    Tick(ReferenceSimulator),
}

macro_rules! any_dispatch {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            AnyBackend::Event($b) => $e,
            AnyBackend::Tick($b) => $e,
        }
    };
}

impl ClusterBackend for AnyBackend {
    fn now(&self) -> i64 {
        any_dispatch!(self, b => b.now())
    }
    fn total_nodes(&self) -> u32 {
        any_dispatch!(self, b => b.total_nodes())
    }
    fn free_nodes(&self) -> u32 {
        any_dispatch!(self, b => b.free_nodes())
    }
    fn available_nodes(&self) -> u32 {
        any_dispatch!(self, b => b.available_nodes())
    }
    fn recent_evictions(&self, window: i64) -> u32 {
        any_dispatch!(self, b => b.recent_evictions(window))
    }
    fn fault_stats(&self) -> FaultStats {
        any_dispatch!(self, b => b.fault_stats())
    }
    fn job_faults(&self, id: u64) -> JobFaults {
        any_dispatch!(self, b => b.job_faults(id))
    }
    fn load_trace(&mut self, jobs: &[JobRecord]) {
        any_dispatch!(self, b => b.load_trace(jobs));
    }
    fn submit(&mut self, job: JobRecord) -> u64 {
        any_dispatch!(self, b => b.submit(job))
    }
    fn sample(&self) -> ClusterSnapshot {
        any_dispatch!(self, b => b.sample())
    }
    fn sample_into(&self, out: &mut ClusterSnapshot) {
        any_dispatch!(self, b => b.sample_into(out))
    }
    fn status(&self, id: u64) -> Option<JobStatus> {
        any_dispatch!(self, b => b.job_status(id))
    }
    fn step(&mut self, dt: i64) {
        any_dispatch!(self, b => b.step(dt));
    }
    fn run_until(&mut self, t_end: i64) {
        any_dispatch!(self, b => b.run_until(t_end));
    }
    fn run_to_completion(&mut self) {
        any_dispatch!(self, b => b.run_to_completion());
    }
    fn is_active(&self) -> bool {
        any_dispatch!(self, b => b.is_active())
    }
    fn completed(&self) -> Vec<JobRecord> {
        any_dispatch!(self, b => b.completed())
    }
    fn metrics(&self) -> SimMetrics {
        any_dispatch!(self, b => b.metrics())
    }
    fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        any_dispatch!(self, b => b.avg_recent_wait(window))
    }
    fn user_usage(&self, user: u32) -> ServiceUsage {
        any_dispatch!(self, b => b.user_usage(user))
    }
    fn reset(&mut self) {
        any_dispatch!(self, b => b.reset());
    }
}

/// Seeded construction of fresh backends, used by [`BackendPool`] to give
/// every worker its own independent instance.
pub trait BackendFactory: Sync {
    /// The backend type this factory builds.
    type Backend: ClusterBackend + Send;

    /// Builds a fresh idle backend for the given seed.
    fn build(&self, seed: u64) -> Self::Backend;
}

impl<B, F> BackendFactory for F
where
    B: ClusterBackend + Send,
    F: Fn(u64) -> B + Sync,
{
    type Backend = B;

    fn build(&self, seed: u64) -> B {
        self(seed)
    }
}

/// Builder-style simulator configuration with value-level backend
/// selection; entry point: [`SimConfig::builder`].
#[derive(Debug, Clone)]
pub struct SimBuilder {
    nodes: u32,
    seed: u64,
    weights: PriorityWeights,
    backfill: BackfillPolicy,
    reject_oversized: bool,
    sched_depth: usize,
    kind: BackendKind,
    tick: i64,
    sched_interval: i64,
    backfill_interval: i64,
    faults: FaultModel,
    retry: RetryPolicy,
}

impl Default for SimBuilder {
    fn default() -> Self {
        let sim = SimConfig::new(1);
        let reference = ReferenceConfig::new(1);
        Self {
            nodes: 1,
            seed: 0,
            weights: sim.weights,
            backfill: sim.backfill,
            reject_oversized: sim.reject_oversized,
            sched_depth: sim.sched_depth,
            kind: BackendKind::EventDriven,
            tick: reference.tick,
            sched_interval: reference.sched_interval,
            backfill_interval: reference.backfill_interval,
            faults: FaultModel::none(),
            retry: RetryPolicy::default(),
        }
    }
}

impl SimBuilder {
    /// Partition size.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Base seed for [`build_pool`](Self::build_pool) workers. Replay is
    /// deterministic for any fixed seed; with fault injection enabled
    /// ([`SimBuilder::faults`]) each pool worker derives its own fault
    /// stream from this seed, so workers see independent (but replayable)
    /// crash tapes.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fault injection model shared by whichever backend is built.
    /// [`FaultModel::none`] (the default) injects nothing.
    pub fn faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// Retry policy for evicted / failed jobs.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Multifactor priority weights.
    pub fn weights(mut self, weights: PriorityWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Backfill flavor.
    pub fn backfill(mut self, backfill: BackfillPolicy) -> Self {
        self.backfill = backfill;
        self
    }

    /// Whether oversized jobs are rejected on arrival.
    pub fn reject_oversized(mut self, reject: bool) -> Self {
        self.reject_oversized = reject;
        self
    }

    /// Scheduling-pass depth (`bf_max_job_test`).
    pub fn sched_depth(mut self, depth: usize) -> Self {
        self.sched_depth = depth;
        self
    }

    /// Which backend [`build`](Self::build) produces.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.kind = kind;
        self
    }

    /// Tick length of the tick-driven backend, seconds.
    pub fn tick(mut self, tick: i64) -> Self {
        self.tick = tick;
        self
    }

    /// Main scheduling cadence of the tick-driven backend, seconds.
    pub fn sched_interval(mut self, interval: i64) -> Self {
        self.sched_interval = interval;
        self
    }

    /// Backfill cadence of the tick-driven backend, seconds.
    pub fn backfill_interval(mut self, interval: i64) -> Self {
        self.backfill_interval = interval;
        self
    }

    /// The event-driven configuration this builder describes.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig {
            nodes: self.nodes,
            weights: self.weights,
            backfill: self.backfill,
            reject_oversized: self.reject_oversized,
            sched_depth: self.sched_depth,
            faults: self.faults,
            retry: self.retry,
        }
    }

    /// The tick-driven configuration this builder describes.
    pub fn reference_config(&self) -> ReferenceConfig {
        ReferenceConfig {
            nodes: self.nodes,
            weights: self.weights,
            sched_interval: self.sched_interval,
            backfill_interval: self.backfill_interval,
            backfill: self.backfill,
            tick: self.tick,
            faults: self.faults,
            retry: self.retry,
        }
    }

    /// Builds the selected backend ([`BackendKind::Pooled`] yields one
    /// event-driven instance; use [`build_pool`](Self::build_pool) for the
    /// fan-out).
    pub fn build(&self) -> AnyBackend {
        match self.kind {
            BackendKind::Tick => AnyBackend::Tick(ReferenceSimulator::new(self.reference_config())),
            BackendKind::EventDriven | BackendKind::Pooled { .. } => {
                AnyBackend::Event(Simulator::new(self.sim_config()))
            }
        }
    }

    /// Builds the selected backend with `trace` pre-loaded.
    pub fn from_trace(&self, trace: &[JobRecord]) -> AnyBackend {
        let mut backend = self.build();
        backend.load_trace(trace);
        backend
    }

    /// Builds a pool of independently seeded backends; worker count comes
    /// from [`BackendKind::Pooled`] or defaults to the available
    /// parallelism.
    pub fn build_pool(&self) -> BackendPool<SimBuilder> {
        let workers = match self.kind {
            BackendKind::Pooled { workers } => workers,
            _ => default_workers(),
        };
        BackendPool::with_seed(self.clone(), workers, self.seed)
    }
}

impl BackendFactory for SimBuilder {
    type Backend = AnyBackend;

    fn build(&self, seed: u64) -> AnyBackend {
        // Replay is deterministic for any fixed seed. With fault injection
        // enabled, each pool worker derives its own crash/failure stream
        // from the builder's fault seed and the worker's seed, so workers
        // explore independent fault schedules while any single worker
        // stays exactly replayable.
        if self.faults.is_none() {
            return SimBuilder::build(self);
        }
        let mut with_worker_faults = self.clone();
        with_worker_faults.faults.seed = split_seed(self.faults.seed, seed);
        SimBuilder::build(&with_worker_faults)
    }
}

impl SimConfig {
    /// Starts a builder with this crate's defaults.
    pub fn builder() -> SimBuilder {
        SimBuilder::default()
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .clamp(1, 16)
}

/// N independently seeded backends fanned out over std threads.
///
/// Tasks are claimed from a shared cursor, every worker drives its own
/// backend built by the factory (seeded `base_seed ^ worker_index`), and
/// results land at their task's index — so the output is identical to a
/// sequential run over the same tasks, whatever the thread interleaving.
pub struct BackendPool<F: BackendFactory> {
    factory: F,
    workers: usize,
    base_seed: u64,
}

impl<F: BackendFactory> BackendPool<F> {
    /// Pool of `workers` backends with seed 0.
    pub fn new(factory: F, workers: usize) -> Self {
        Self::with_seed(factory, workers, 0)
    }

    /// Pool of `workers` backends derived from `base_seed`.
    pub fn with_seed(factory: F, workers: usize, base_seed: u64) -> Self {
        Self {
            factory,
            workers: workers.max(1),
            base_seed,
        }
    }

    /// Worker (= backend instance) count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Builds one backend outside the pool (worker index 0's seed).
    pub fn build_one(&self) -> F::Backend {
        self.factory.build(self.base_seed)
    }

    /// Builds every worker's backend (seeded `base_seed ^ index`, exactly
    /// as [`BackendPool::map`] seeds its threads) as one vector — the
    /// construction path for lockstep drivers that step all instances in
    /// a single thread instead of fanning tasks out.
    pub fn build_all(&self) -> Vec<F::Backend> {
        self.build_n(self.workers)
    }

    /// Builds the first `n` workers' backends (seeded exactly as
    /// [`BackendPool::build_all`]) — the construction path for lockstep
    /// training windows, whose final window is usually narrower than the
    /// pool. `n` may exceed the worker count; lockstep instances are
    /// stepped by one thread, so the pool's width only namespaces seeds.
    pub fn build_n(&self, n: usize) -> Vec<F::Backend> {
        (0..n)
            .map(|w| self.factory.build(self.base_seed ^ (w as u64)))
            .collect()
    }

    /// Runs `f` once per task across the pool's backends and returns the
    /// results in task order. `f` must leave the backend reusable (the
    /// episode driver resets it), which is what makes results independent
    /// of the task-to-worker assignment.
    pub fn map<T, R, G>(&self, tasks: &[T], f: G) -> Vec<R>
    where
        T: Sync,
        R: Send,
        G: Fn(&mut F::Backend, &T) -> R + Sync,
    {
        let workers = self.workers.min(tasks.len()).max(1);
        if workers == 1 {
            let mut backend = self.factory.build(self.base_seed);
            return tasks.iter().map(|t| f(&mut backend, t)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = (0..tasks.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let cursor = &cursor;
                let slots = &slots;
                let f = &f;
                let factory = &self.factory;
                let seed = self.base_seed ^ (w as u64);
                scope.spawn(move || {
                    let mut backend = factory.build(seed);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        let r = f(&mut backend, &tasks[i]);
                        *slots[i].lock().expect("unpoisoned result slot") = Some(r);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned result slot")
                    .expect("every task index was claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::HOUR;

    fn job(id: u64, submit: i64, nodes: u32, runtime: i64, limit: i64) -> JobRecord {
        JobRecord::new(id, format!("j{id}"), 1, submit, nodes, limit, runtime)
    }

    fn small_trace() -> Vec<JobRecord> {
        (0..12)
            .map(|i| job(i + 1, i as i64 * 900, 1 + (i % 3) as u32, HOUR, 2 * HOUR))
            .collect()
    }

    fn drive<B: ClusterBackend>(backend: &mut B) -> usize {
        backend.reset_with(&small_trace());
        backend.run_to_completion();
        backend.completed().len()
    }

    #[test]
    fn both_backends_complete_the_same_trace_through_the_trait() {
        let mut fast = Simulator::new(SimConfig::new(4));
        let mut reference = ReferenceSimulator::new(ReferenceConfig::new(4));
        assert_eq!(drive(&mut fast), 12);
        assert_eq!(drive(&mut reference), 12);
    }

    #[test]
    fn builder_selects_backends_by_value() {
        let event = SimConfig::builder().nodes(8).build();
        assert!(matches!(event, AnyBackend::Event(_)));
        let tick = SimConfig::builder()
            .nodes(8)
            .backend(BackendKind::Tick)
            .build();
        assert!(matches!(tick, AnyBackend::Tick(_)));
        let mut any = SimConfig::builder()
            .nodes(4)
            .backend(BackendKind::Tick)
            .tick(60)
            .sched_interval(60)
            .from_trace(&small_trace());
        assert_eq!(any.total_nodes(), 4);
        any.run_to_completion();
        assert_eq!(any.completed().len(), 12);
    }

    #[test]
    fn builder_carries_scheduling_options() {
        let b = SimConfig::builder()
            .nodes(16)
            .backfill(BackfillPolicy::None)
            .sched_depth(7)
            .reject_oversized(false);
        assert_eq!(b.sim_config().nodes, 16);
        assert_eq!(b.sim_config().sched_depth, 7);
        assert!(!b.sim_config().reject_oversized);
        assert_eq!(b.sim_config().backfill, BackfillPolicy::None);
        assert_eq!(b.reference_config().backfill, BackfillPolicy::None);
    }

    #[test]
    fn trait_objects_and_reborrows_compose() {
        // `&mut B` forwards the whole trait, so generic drivers can take
        // either owned backends or reborrows.
        let mut sim = Simulator::new(SimConfig::new(4));
        let reborrow: &mut Simulator = &mut sim;
        assert_eq!(drive(&mut { reborrow }), 12);
    }

    #[test]
    fn pool_map_preserves_task_order_and_matches_sequential() {
        let builder = SimConfig::builder().nodes(4).seed(9);
        let tasks: Vec<i64> = (0..23).map(|i| i * HOUR).collect();
        let run = |backend: &mut AnyBackend, &t: &i64| -> (i64, usize) {
            backend.reset_with(&small_trace());
            backend.run_until(t);
            (
                t,
                backend.sample().running.len() + backend.completed().len(),
            )
        };
        let sequential = BackendPool::with_seed(builder.clone(), 1, 9).map(&tasks, run);
        let pooled = BackendPool::with_seed(builder, 6, 9).map(&tasks, run);
        assert_eq!(sequential, pooled);
        // Results are in task order.
        for (i, (t, _)) in pooled.iter().enumerate() {
            assert_eq!(*t, tasks[i]);
        }
    }

    #[test]
    fn pool_handles_more_workers_than_tasks() {
        let pool = SimConfig::builder()
            .nodes(2)
            .backend(BackendKind::Pooled { workers: 8 })
            .build_pool();
        assert_eq!(pool.workers(), 8);
        let out = pool.map(&[1u32], |backend, &x| {
            backend.reset();
            x + backend.total_nodes()
        });
        assert_eq!(out, vec![3]);
        let empty: Vec<u32> = pool.map(&[], |_, &x: &u32| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn user_usage_ledgers_agree_with_the_default_derivation() {
        // Tag two users' jobs into one cluster; both backends' fast
        // ledgers must match the trait's sample()+completed() derivation
        // mid-run (mixed queued/running/completed state) and at the end.
        let trace: Vec<JobRecord> = (0..10)
            .map(|i| {
                let mut j = job(
                    i + 1,
                    i as i64 * 600,
                    1 + (i % 2) as u32,
                    2 * HOUR,
                    4 * HOUR,
                );
                j.user = if i % 3 == 0 { 7 } else { 8 };
                j
            })
            .collect();
        let default_of = |b: &AnyBackend, user: u32| -> ServiceUsage {
            // Re-derive through the trait default by viewing the backend
            // as a bare ClusterBackend without the override.
            struct Plain<'a>(&'a AnyBackend);
            impl ClusterBackend for Plain<'_> {
                fn now(&self) -> i64 {
                    self.0.now()
                }
                fn total_nodes(&self) -> u32 {
                    self.0.total_nodes()
                }
                fn free_nodes(&self) -> u32 {
                    self.0.free_nodes()
                }
                fn load_trace(&mut self, _jobs: &[JobRecord]) {}
                fn submit(&mut self, _job: JobRecord) -> u64 {
                    0
                }
                fn sample(&self) -> ClusterSnapshot {
                    self.0.sample()
                }
                fn status(&self, id: u64) -> Option<JobStatus> {
                    self.0.status(id)
                }
                fn step(&mut self, _dt: i64) {}
                fn run_until(&mut self, _t_end: i64) {}
                fn run_to_completion(&mut self) {}
                fn is_active(&self) -> bool {
                    self.0.is_active()
                }
                fn completed(&self) -> Vec<JobRecord> {
                    self.0.completed()
                }
                fn metrics(&self) -> SimMetrics {
                    self.0.metrics()
                }
                fn avg_recent_wait(&self, window: i64) -> Option<f64> {
                    self.0.avg_recent_wait(window)
                }
                fn reset(&mut self) {}
            }
            Plain(b).user_usage(user)
        };
        for kind in [BackendKind::EventDriven, BackendKind::Tick] {
            let mut b = SimConfig::builder().nodes(2).backend(kind).build();
            b.reset_with(&trace);
            b.run_until(3 * HOUR);
            for user in [7u32, 8, 99] {
                assert_eq!(b.user_usage(user), default_of(&b, user), "{kind:?} mid-run");
            }
            b.run_to_completion();
            let u7 = b.user_usage(7);
            let u8 = b.user_usage(8);
            assert_eq!(u7.completed + u8.completed, 10, "{kind:?}");
            assert_eq!(u7.queued + u7.running, 0, "{kind:?}");
            assert!(u7.node_seconds > 0.0 && u8.node_seconds > 0.0, "{kind:?}");
            assert!(u7.avg_wait().is_some());
            assert!(b.user_usage(99).is_idle());
            for user in [7u32, 8] {
                assert_eq!(b.user_usage(user), default_of(&b, user), "{kind:?} final");
            }
        }
    }

    #[test]
    fn builder_carries_fault_and_retry_options_to_both_backends() {
        let retry = RetryPolicy {
            max_attempts: 5,
            backoff_base: 30,
            backoff_cap: 600,
        };
        let b = SimConfig::builder()
            .nodes(8)
            .faults(FaultModel::moderate(3))
            .retry(retry);
        assert_eq!(b.sim_config().faults, FaultModel::moderate(3));
        assert_eq!(b.sim_config().retry, retry);
        assert_eq!(b.reference_config().faults, FaultModel::moderate(3));
        assert_eq!(b.reference_config().retry, retry);
        // Default builder injects nothing.
        assert!(SimConfig::builder().sim_config().faults.is_none());
    }

    #[test]
    fn pool_workers_get_split_fault_seeds() {
        let builder = SimConfig::builder()
            .nodes(4)
            .seed(5)
            .faults(FaultModel::severe(42));
        let fault_seed_of = |b: &AnyBackend| match b {
            AnyBackend::Event(sim) => sim.config().faults.seed,
            AnyBackend::Tick(sim) => sim.config().faults.seed,
        };
        let w0 = BackendFactory::build(&builder, 5);
        let w1 = BackendFactory::build(&builder, 5 ^ 1);
        assert_ne!(
            fault_seed_of(&w0),
            fault_seed_of(&w1),
            "workers explore independent fault streams"
        );
        // Same worker seed → same derived stream (replayable).
        let w0_again = BackendFactory::build(&builder, 5);
        assert_eq!(fault_seed_of(&w0), fault_seed_of(&w0_again));
        // Without faults, the factory leaves the config untouched.
        let plain = SimConfig::builder().nodes(4);
        let p = BackendFactory::build(&plain, 99);
        assert!(fault_seed_of(&p) == 0 && plain.sim_config().faults.is_none());
    }

    #[test]
    fn closure_factories_build_custom_backends() {
        let factory = |_seed: u64| Simulator::new(SimConfig::new(3));
        let pool = BackendPool::new(factory, 2);
        let totals = pool.map(&[0u8, 1, 2], |b, _| b.total_nodes());
        assert_eq!(totals, vec![3, 3, 3]);
    }
}
