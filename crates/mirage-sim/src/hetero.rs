//! Heterogeneous node pools and placement-sensitive contention.
//!
//! Production GPU clusters are rarely one uniform partition: they are pools
//! of A100/V100/T4-class nodes where the node type sets job speed and the
//! *placement* sets a second-order penalty — a job striped across pools
//! pays cross-pool interconnect cost, and a job landing on an almost-full
//! pool contends for shared links. This module models both:
//!
//! * [`NodePool`] — a typed slice of the partition with a per-type
//!   throughput multiplier (1.0 = baseline; runtimes scale by
//!   `1/throughput`),
//! * [`HeteroModel`] — the pool layout plus a contention model: a
//!   placement that spans pools, lands congested, or spills a
//!   [`Demand`](mirage_trace::PoolRequest::Demand) request off-type draws a
//!   deterministic, seeded slowdown factor.
//!
//! Determinism follows the fault-model discipline: the slowdown draw is a
//! pure hash of `(seed, job id, attempt)`, so identically-seeded runs — and
//! `reset()` replays — see identical slowdowns regardless of event
//! interleaving, and retries of the same job re-draw independently.
//!
//! `HeteroModel::none()` (the default) is a strict no-op: simulators skip
//! every pool code path and stay byte-identical to the homogeneous model.
//! A single-pool model with `throughput == 1.0` and `contention == 0.0` is
//! also an exact identity — `place` then always returns scale 1.0 — which
//! the property tests pin against the pre-hetero behaviour.

use serde::{Deserialize, Serialize};

use mirage_trace::{splitmix64, PoolRequest};

use crate::fault::SimConfigError;

/// One typed node pool: a contiguous range of node indices
/// (`[offset, offset + nodes)` in declaration order) with a common speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePool {
    /// Pool kind tag jobs refer to (e.g. `"a100"`).
    pub kind: String,
    /// Nodes in this pool. Pool node counts sum to the partition size.
    pub nodes: u32,
    /// Relative per-node throughput (baseline = 1.0). Runtimes of jobs
    /// placed here scale by `1/throughput`; a job touching several pools
    /// runs at the *slowest* touched pool's speed (stragglers gate
    /// synchronous workloads).
    pub throughput: f64,
}

impl NodePool {
    /// Creates a pool.
    pub fn new(kind: impl Into<String>, nodes: u32, throughput: f64) -> Self {
        Self {
            kind: kind.into(),
            nodes,
            throughput,
        }
    }
}

/// Pool layout and placement-sensitivity model of a partition.
///
/// Carried by value inside simulator configs so `reset()` replays the same
/// heterogeneity tape, mirroring [`FaultModel`](crate::FaultModel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroModel {
    /// Master switch. `false` (the default) keeps the homogeneous
    /// single-counter fast path and ignores every other field.
    #[serde(default)]
    pub enabled: bool,
    /// Typed pools in node-index order; counts must sum to the partition
    /// size when enabled.
    #[serde(default)]
    pub pools: Vec<NodePool>,
    /// Strength of the contention slowdown. A penalized placement draws a
    /// factor in `[1 + 0.25·c, 1 + c]`; `0.0` disables the penalty while
    /// keeping pool-speed scaling.
    #[serde(default)]
    pub contention: f64,
    /// Busy fraction at or above which a touched pool counts as congested
    /// (post-placement, down nodes included). In `(0, 1]`.
    #[serde(default)]
    pub congestion: f64,
    /// Seed of the slowdown draw stream; independent of the fault seed.
    #[serde(default)]
    pub seed: u64,
}

impl Default for HeteroModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Outcome of placing one job on the pooled partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Runtime multiplier: `slowdown / min(touched throughput)`. Exactly
    /// `1.0` for an unpenalized placement on baseline-speed nodes.
    pub scale: f64,
    /// The job was striped across two or more pools.
    pub spans: bool,
    /// Some touched pool was at or above the congestion threshold.
    pub congested: bool,
    /// A `Demand` request spilled onto a non-matching pool.
    pub off_type: bool,
}

/// Running counters of the heterogeneity model, for eval lanes and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HeteroStats {
    /// Job placements performed by the pool allocator.
    pub placements: u64,
    /// Placements striped across two or more pools.
    pub span_placements: u64,
    /// Placements that touched a congested pool.
    pub congested_placements: u64,
    /// `Demand` requests that spilled off their named kind.
    pub off_type_placements: u64,
    /// Placements whose final runtime scale exceeded 1.0 (contention draw
    /// and/or a sub-baseline pool).
    pub slowdowns: u64,
}

impl HeteroStats {
    /// Folds one placement outcome into the counters.
    pub fn record(&mut self, p: &Placement) {
        self.placements += 1;
        self.span_placements += u64::from(p.spans);
        self.congested_placements += u64::from(p.congested);
        self.off_type_placements += u64::from(p.off_type);
        self.slowdowns += u64::from(p.scale > 1.0);
    }
}

impl HeteroModel {
    /// Homogeneous partition: no pools, no contention, a strict no-op.
    pub fn none() -> Self {
        Self {
            enabled: false,
            pools: Vec::new(),
            contention: 0.0,
            congestion: 0.9,
            seed: 0,
        }
    }

    /// Whether this is the homogeneous no-op model.
    pub fn is_none(&self) -> bool {
        !self.enabled
    }

    /// Enabled model from an explicit pool list.
    pub fn with_pools(pools: Vec<NodePool>, contention: f64, seed: u64) -> Self {
        Self {
            enabled: true,
            pools,
            contention,
            congestion: 0.9,
            seed,
        }
    }

    /// Canonical two-tier scenario: a fast `a100` quarter (throughput 1.6)
    /// and a baseline `v100` balance, moderate contention. Needs
    /// `nodes >= 2`.
    pub fn balanced(nodes: u32, seed: u64) -> Self {
        let fast = (nodes / 4).max(1);
        let mut m = Self::with_pools(
            vec![
                NodePool::new("a100", fast, 1.6),
                NodePool::new("v100", nodes - fast, 1.0),
            ],
            0.6,
            seed,
        );
        m.congestion = 0.85;
        m
    }

    /// Canonical three-tier scenario: scarce double-speed `a100`s, a
    /// baseline `v100` middle and a slow `t4` tail, high contention with an
    /// aggressive congestion threshold. Needs `nodes >= 3`.
    pub fn scarce(nodes: u32, seed: u64) -> Self {
        let fast = (nodes / 8).max(1);
        let mid = ((nodes - fast) / 2).max(1);
        let mut m = Self::with_pools(
            vec![
                NodePool::new("a100", fast, 2.0),
                NodePool::new("v100", mid, 1.0),
                NodePool::new("t4", nodes - fast - mid, 0.6),
            ],
            1.0,
            seed,
        );
        m.congestion = 0.75;
        m
    }

    /// Validates the model against the partition size.
    ///
    /// The disabled model always passes (every field is ignored), mirroring
    /// how `FaultModel::none()` validates.
    pub fn validate(&self, nodes: u32) -> Result<(), SimConfigError> {
        if self.is_none() {
            return Ok(());
        }
        if self.pools.is_empty() {
            return Err(SimConfigError::new(
                "hetero.pools",
                "[]",
                "an enabled heterogeneous model needs at least one pool",
            ));
        }
        for p in &self.pools {
            if p.nodes == 0 {
                return Err(SimConfigError::new(
                    "hetero.pools.nodes",
                    p.nodes,
                    "every pool needs at least one node",
                ));
            }
            if !p.throughput.is_finite() || p.throughput <= 0.0 {
                return Err(SimConfigError::new(
                    "hetero.pools.throughput",
                    p.throughput,
                    "throughput multiplier must be finite and positive",
                ));
            }
        }
        let total: u32 = self.pools.iter().map(|p| p.nodes).sum();
        if total != nodes {
            return Err(SimConfigError::new(
                "hetero.pools",
                total,
                "pool node counts must sum to the partition size",
            ));
        }
        if !self.contention.is_finite() || self.contention < 0.0 {
            return Err(SimConfigError::new(
                "hetero.contention",
                self.contention,
                "contention strength must be finite and non-negative",
            ));
        }
        if !self.congestion.is_finite() || self.congestion <= 0.0 || self.congestion > 1.0 {
            return Err(SimConfigError::new(
                "hetero.congestion",
                self.congestion,
                "congestion threshold must be in (0, 1]",
            ));
        }
        Ok(())
    }

    /// Per-pool node totals, in declaration order.
    pub fn pool_totals(&self) -> Vec<u32> {
        self.pools.iter().map(|p| p.nodes).collect()
    }

    /// Pool index owning node `node` (pools cover contiguous index ranges
    /// in declaration order).
    pub fn pool_of_node(&self, node: u32) -> usize {
        let mut acc = 0u32;
        for (p, pool) in self.pools.iter().enumerate() {
            acc += pool.nodes;
            if node < acc {
                return p;
            }
        }
        self.pools.len().saturating_sub(1)
    }

    /// Deterministic contention slowdown for `(job id, attempt)`.
    ///
    /// Pure hash of the seed and identifiers — the same discipline as
    /// `FaultModel::job_fails`, with a distinct mixing constant so the two
    /// streams stay independent even under equal seeds. Returns a factor in
    /// `[1 + 0.25·contention, 1 + contention]`, or exactly `1.0` when
    /// contention is zero.
    pub fn slowdown(&self, id: u64, attempt: u32) -> f64 {
        if self.contention <= 0.0 {
            return 1.0;
        }
        let h = splitmix64(
            self.seed
                ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.contention * (0.25 + 0.75 * u)
    }

    /// Places a `nodes`-wide job on the pools, decrementing `pool_free` and
    /// recording per-pool allocation counts into `counts` (resized to the
    /// pool count). Requires `sum(pool_free) >= nodes` — the scheduler has
    /// already admitted the job against the aggregate free counter.
    ///
    /// Deterministic greedy fill: pools matching a named kind first
    /// (`Prefer`/`Demand`), then the rest in declaration order.
    pub fn place(
        &self,
        pool_free: &mut [u32],
        req: &PoolRequest,
        nodes: u32,
        id: u64,
        attempt: u32,
        counts: &mut Vec<u32>,
    ) -> Placement {
        counts.clear();
        counts.resize(self.pools.len(), 0);
        let mut need = nodes;
        let kind = req.kind();
        if let Some(k) = kind {
            take(&self.pools, pool_free, counts, &mut need, |p| p.kind == k);
        }
        take(&self.pools, pool_free, counts, &mut need, |_| true);
        debug_assert_eq!(need, 0, "placement admitted without enough free nodes");

        let mut touched = 0usize;
        let mut thr = f64::INFINITY;
        let mut congested = false;
        let mut off_type = false;
        let demand = matches!(req, PoolRequest::Demand(_));
        for (p, pool) in self.pools.iter().enumerate() {
            if counts[p] == 0 {
                continue;
            }
            touched += 1;
            thr = thr.min(pool.throughput);
            let busy = pool.nodes - pool_free[p];
            if f64::from(busy) >= self.congestion * f64::from(pool.nodes) {
                congested = true;
            }
            if demand && kind != Some(pool.kind.as_str()) {
                off_type = true;
            }
        }
        let spans = touched > 1;
        let factor = if spans || congested || off_type {
            self.slowdown(id, attempt)
        } else {
            1.0
        };
        let thr = if thr.is_finite() { thr } else { 1.0 };
        Placement {
            scale: factor / thr,
            spans,
            congested,
            off_type,
        }
    }
}

/// Greedy take from pools matching `pred`, in declaration order.
fn take(
    pools: &[NodePool],
    pool_free: &mut [u32],
    counts: &mut [u32],
    need: &mut u32,
    pred: impl Fn(&NodePool) -> bool,
) {
    for (p, pool) in pools.iter().enumerate() {
        if *need == 0 {
            break;
        }
        if !pred(pool) {
            continue;
        }
        let t = (*need).min(pool_free[p]);
        pool_free[p] -= t;
        counts[p] += t;
        *need -= t;
    }
}

/// Applies a placement scale to a runtime, rounding partial seconds up.
/// Exact identity at `scale == 1.0` so unpenalized baseline placements stay
/// byte-identical to the homogeneous path.
pub fn scale_runtime(run: i64, scale: f64) -> i64 {
    if scale == 1.0 || run <= 0 {
        return run;
    }
    ((run as f64 * scale).ceil() as i64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pool() -> HeteroModel {
        HeteroModel::with_pools(
            vec![NodePool::new("a100", 2, 1.6), NodePool::new("v100", 6, 1.0)],
            0.5,
            7,
        )
    }

    #[test]
    fn none_is_default_and_validates_anything() {
        assert!(HeteroModel::none().is_none());
        assert_eq!(HeteroModel::default(), HeteroModel::none());
        let mut garbage = HeteroModel::none();
        garbage.contention = f64::NAN;
        assert!(garbage.validate(0).is_ok(), "disabled model is inert");
    }

    #[test]
    fn validation_rejects_unsound_fields() {
        let nodes = 8;
        let mut m = two_pool();
        m.pools.clear();
        assert_eq!(m.validate(nodes).unwrap_err().field, "hetero.pools");

        let mut m = two_pool();
        m.pools[0].nodes = 0;
        assert_eq!(m.validate(nodes).unwrap_err().field, "hetero.pools.nodes");

        let mut m = two_pool();
        m.pools[1].throughput = -1.0;
        assert_eq!(
            m.validate(nodes).unwrap_err().field,
            "hetero.pools.throughput"
        );

        let m = two_pool();
        let err = m.validate(9).unwrap_err();
        assert_eq!(err.field, "hetero.pools");
        assert_eq!(err.value, "8");

        let mut m = two_pool();
        m.contention = -0.1;
        assert_eq!(m.validate(nodes).unwrap_err().field, "hetero.contention");

        let mut m = two_pool();
        m.congestion = 1.5;
        assert_eq!(m.validate(nodes).unwrap_err().field, "hetero.congestion");

        assert!(two_pool().validate(nodes).is_ok());
    }

    #[test]
    fn pool_of_node_follows_declaration_ranges() {
        let m = two_pool();
        assert_eq!(m.pool_of_node(0), 0);
        assert_eq!(m.pool_of_node(1), 0);
        assert_eq!(m.pool_of_node(2), 1);
        assert_eq!(m.pool_of_node(7), 1);
        assert_eq!(m.pool_totals(), vec![2, 6]);
    }

    #[test]
    fn slowdown_is_deterministic_bounded_and_stream_independent() {
        let m = two_pool();
        for id in 1..200u64 {
            for attempt in 1..4u32 {
                let s = m.slowdown(id, attempt);
                assert_eq!(s, m.slowdown(id, attempt));
                assert!((1.125..=1.5).contains(&s), "slowdown {s} out of range");
            }
        }
        // Different seeds decorrelate.
        let mut other = two_pool();
        other.seed = 8;
        assert!((1..200u64).any(|id| m.slowdown(id, 1) != other.slowdown(id, 1)));
        // Retries re-draw.
        assert!((1..200u64).any(|id| m.slowdown(id, 1) != m.slowdown(id, 2)));
        // Zero contention is an exact identity.
        let mut off = two_pool();
        off.contention = 0.0;
        assert_eq!(off.slowdown(42, 1), 1.0);
    }

    #[test]
    fn placement_prefers_the_named_kind_and_detects_spans() {
        let m = two_pool();
        let mut free = vec![2u32, 6];
        let mut counts = Vec::new();
        // Demand("a100") fits entirely in pool 0.
        let p = m.place(
            &mut free,
            &PoolRequest::Demand("a100".into()),
            2,
            1,
            1,
            &mut counts,
        );
        assert_eq!(counts, vec![2, 0]);
        assert_eq!(free, vec![0, 6]);
        assert!(!p.spans && !p.off_type);
        // a100 is now full: a second demand spills off-type.
        let p = m.place(
            &mut free,
            &PoolRequest::Demand("a100".into()),
            1,
            2,
            1,
            &mut counts,
        );
        assert_eq!(counts, vec![0, 1]);
        assert!(p.off_type);
        assert!(p.scale > 1.0, "off-type placement is penalized");
        // A wide Anywhere job spans both pools once pool 0 frees up.
        free = vec![2, 6];
        let p = m.place(&mut free, &PoolRequest::Anywhere, 4, 3, 1, &mut counts);
        assert_eq!(counts, vec![2, 2]);
        assert!(p.spans);
        // Spanning runs at the slowest touched pool's speed, times the draw.
        assert!(p.scale >= m.slowdown(3, 1) / 1.0 - 1e-12);
    }

    #[test]
    fn congestion_triggers_at_the_threshold() {
        let mut m = two_pool();
        m.contention = 1.0;
        m.congestion = 0.5;
        let mut free = vec![2u32, 6];
        let mut counts = Vec::new();
        // 3 of 6 v100 nodes busy == the 0.5 threshold.
        let p = m.place(
            &mut free,
            &PoolRequest::Demand("v100".into()),
            3,
            9,
            1,
            &mut counts,
        );
        assert!(p.congested);
        assert!(p.scale > 1.0);
    }

    #[test]
    fn single_baseline_pool_without_contention_is_an_exact_identity() {
        let m = HeteroModel::with_pools(vec![NodePool::new("any", 8, 1.0)], 0.0, 99);
        let mut free = vec![8u32];
        let mut counts = Vec::new();
        for id in 1..50u64 {
            let width = 1 + (id % 4) as u32;
            if free[0] < width {
                free[0] = 8;
            }
            let p = m.place(&mut free, &PoolRequest::Anywhere, width, id, 1, &mut counts);
            assert_eq!(p.scale, 1.0, "identity model must never rescale");
            assert_eq!(scale_runtime(3600, p.scale), 3600);
        }
    }

    #[test]
    fn scale_runtime_rounds_up_and_clamps() {
        assert_eq!(scale_runtime(100, 1.0), 100);
        assert_eq!(scale_runtime(100, 1.5), 150);
        assert_eq!(scale_runtime(101, 1.013), 103);
        assert_eq!(scale_runtime(100, 0.5), 50);
        assert_eq!(scale_runtime(1, 0.1), 1);
        assert_eq!(scale_runtime(0, 2.0), 0);
    }

    #[test]
    fn canonical_scenarios_validate_on_small_and_paper_sized_partitions() {
        for nodes in [4u32, 8, 16, 88] {
            HeteroModel::balanced(nodes, 1).validate(nodes).unwrap();
            HeteroModel::scarce(nodes, 1).validate(nodes).unwrap();
        }
    }
}
