//! Fault injection: node crash/recovery models, job retry policy, and
//! the per-run fault ledgers both simulators maintain.
//!
//! A [`FaultModel`] turns a seed into a deterministic crash tape
//! ([`mirage_trace::fault_schedule`]) plus an order-independent transient
//! job-failure draw; a [`RetryPolicy`] decides how evicted jobs re-enter
//! the queue (max attempts, exponential backoff). Both live inside the
//! simulator configs so `reset()` replays the identical fault schedule —
//! that is what lets the chaos evaluation lane compare RL and heuristic
//! methods on the same crashes.

use std::collections::VecDeque;
use std::fmt;

use mirage_trace::faults::NodeFaultEvent;
use mirage_trace::{fault_schedule, splitmix64, DAY, HOUR, MINUTE};
use serde::{Deserialize, Serialize};

/// A numeric field of a simulator / fault configuration that cannot
/// yield a sound simulation — NaN or out-of-range probabilities,
/// negative durations, an empty partition. Produced by the
/// `validate()` / `try_build` family so a bad config surfaces as a
/// typed error at build time instead of a NaN fault tape at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfigError {
    /// Dotted path of the offending field (e.g. `faults.mtbf`).
    pub field: &'static str,
    /// The rejected value, rendered for the message.
    pub value: String,
    /// Why the value is rejected.
    pub reason: &'static str,
}

impl SimConfigError {
    pub(crate) fn new(field: &'static str, value: impl fmt::Display, reason: &'static str) -> Self {
        Self {
            field,
            value: value.to_string(),
            reason,
        }
    }
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid simulator config: {} = {} ({})",
            self.field, self.value, self.reason
        )
    }
}

impl std::error::Error for SimConfigError {}

/// Node failure/recovery + transient job-failure model.
///
/// `mtbf <= 0` disables node faults and `job_fail_prob <= 0` disables
/// transient failures; [`FaultModel::none`] (the `Default`) disables both,
/// leaving every simulator code path byte-identical to the pre-fault
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Mean seconds between failures per node (exponential; `<= 0` off).
    #[serde(default)]
    pub mtbf: i64,
    /// Mean seconds a crashed node stays down (exponential, min 1 s).
    #[serde(default)]
    pub mttr: i64,
    /// Probability that one job attempt dies mid-run (order-independent
    /// hash draw on `(seed, job id, attempt)`).
    #[serde(default)]
    pub job_fail_prob: f64,
    /// Master seed of the crash tape and failure draws.
    #[serde(default)]
    pub seed: u64,
    /// Crashes are generated up to this instant (recoveries may land
    /// later so no node stays down forever).
    #[serde(default)]
    pub horizon: i64,
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultModel {
    /// Perfectly reliable hardware — the default, and the identity pins'
    /// guarantee: with this model every simulator path is unchanged.
    pub fn none() -> Self {
        Self {
            mtbf: 0,
            mttr: 0,
            job_fail_prob: 0.0,
            seed: 0,
            horizon: 0,
        }
    }

    /// Occasional failures: node crashes every ~4 days, ~2 h repairs,
    /// 2 % of job attempts die mid-run.
    pub fn moderate(seed: u64) -> Self {
        Self {
            mtbf: 4 * DAY,
            mttr: 2 * HOUR,
            job_fail_prob: 0.02,
            seed,
            horizon: 60 * DAY,
        }
    }

    /// Hostile hardware: node crashes every ~18 h, ~4 h repairs, 8 % of
    /// job attempts die mid-run.
    pub fn severe(seed: u64) -> Self {
        Self {
            mtbf: 18 * HOUR,
            mttr: 4 * HOUR,
            job_fail_prob: 0.08,
            seed,
            horizon: 60 * DAY,
        }
    }

    /// The same model on a different seed stream.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the model injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.mtbf <= 0 && self.job_fail_prob <= 0.0
    }

    /// Rejects fields that cannot parameterize the fault processes: a
    /// non-finite or out-of-`[0, 1]` failure probability, or negative
    /// durations (`0` stays valid — it means "off").
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if !self.job_fail_prob.is_finite() {
            return Err(SimConfigError::new(
                "faults.job_fail_prob",
                self.job_fail_prob,
                "must be finite",
            ));
        }
        if !(0.0..=1.0).contains(&self.job_fail_prob) {
            return Err(SimConfigError::new(
                "faults.job_fail_prob",
                self.job_fail_prob,
                "must lie in [0, 1]",
            ));
        }
        if self.mtbf < 0 {
            return Err(SimConfigError::new(
                "faults.mtbf",
                self.mtbf,
                "must be >= 0 (0 disables node faults)",
            ));
        }
        if self.mttr < 0 {
            return Err(SimConfigError::new(
                "faults.mttr",
                self.mttr,
                "must be >= 0",
            ));
        }
        if self.horizon < 0 {
            return Err(SimConfigError::new(
                "faults.horizon",
                self.horizon,
                "must be >= 0",
            ));
        }
        Ok(())
    }

    /// The deterministic crash/recovery tape for a partition of `nodes`
    /// nodes (empty when node faults are disabled).
    pub fn node_schedule(&self, nodes: u32) -> Vec<NodeFaultEvent> {
        if self.mtbf <= 0 || nodes == 0 {
            return Vec::new();
        }
        fault_schedule(self.seed, nodes, self.mtbf, self.mttr, self.horizon.max(1))
    }

    /// Whether attempt number `attempt` (1-based) of job `id` dies mid-run,
    /// and if so at which fraction of its runtime, in `(0, 1]`.
    ///
    /// A pure hash of `(seed, id, attempt)` — independent of dispatch
    /// order, so the event-driven and tick-driven simulators draw the
    /// same verdict for the same attempt even though they start jobs at
    /// different instants.
    pub fn job_fails(&self, id: u64, attempt: u32) -> Option<f64> {
        if self.job_fail_prob <= 0.0 {
            return None;
        }
        let h = splitmix64(
            self.seed
                ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.job_fail_prob {
            return None;
        }
        let h2 = splitmix64(h ^ 0xA076_1D64_78BD_642F);
        let frac = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        Some(frac.max(f64::EPSILON))
    }
}

/// How evicted / failed jobs re-enter the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts a job gets (first run included). 0 and 1 both mean
    /// "never retry".
    #[serde(default)]
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    #[serde(default)]
    pub backoff_base: i64,
    /// Backoff ceiling, seconds.
    #[serde(default)]
    pub backoff_cap: i64,
}

impl Default for RetryPolicy {
    /// Three attempts, 1 min → 2 min → … doubling backoff capped at 1 h —
    /// Slurm-requeue-flavored defaults.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base: MINUTE,
            backoff_cap: HOUR,
        }
    }
}

impl RetryPolicy {
    /// Whether a job that has already started `attempts` times may retry.
    pub fn allows(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// Rejects negative backoff fields (`0` stays valid — [`delay`]
    /// clamps it up to 1 s).
    ///
    /// [`delay`]: RetryPolicy::delay
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.backoff_base < 0 {
            return Err(SimConfigError::new(
                "retry.backoff_base",
                self.backoff_base,
                "must be >= 0",
            ));
        }
        if self.backoff_cap < 0 {
            return Err(SimConfigError::new(
                "retry.backoff_cap",
                self.backoff_cap,
                "must be >= 0",
            ));
        }
        Ok(())
    }

    /// Backoff delay before retry number `retry` (1-based): exponential
    /// doubling from `backoff_base`, capped at `backoff_cap`, at least 1 s.
    pub fn delay(&self, retry: u32) -> i64 {
        let shift = retry.saturating_sub(1).min(31);
        self.backoff_base
            .max(1)
            .saturating_mul(1i64 << shift)
            .min(self.backoff_cap.max(1))
            .max(1)
    }
}

/// Aggregate fault counters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Node crash events fired.
    pub node_crashes: u64,
    /// Node recovery events fired.
    pub node_recoveries: u64,
    /// Running jobs evicted (node crash + transient failure together).
    pub evictions: u64,
    /// Evictions caused by transient mid-run job failures.
    pub job_failures: u64,
    /// Retries scheduled (evictions that re-queued under backoff).
    pub retries: u64,
    /// Jobs that completed after at least one retry.
    pub retry_successes: u64,
    /// Jobs that exhausted their attempts and failed terminally.
    pub failed_jobs: u64,
}

/// Per-job fault ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct JobFaults {
    /// Times this job was evicted mid-run.
    pub evictions: u32,
    /// Seconds between each eviction and the subsequent restart — the
    /// service downtime a predecessor's evictions inflicted.
    pub downtime: i64,
}

/// Sliding log of eviction instants, bounded like the admission module's
/// `RecentStarts` so a month-long run cannot grow it without bound. Backs
/// the recent-eviction-rate accessor agents observe.
#[derive(Debug, Clone, Default)]
pub struct EvictionLog {
    times: VecDeque<i64>,
}

/// Retention cap: evictions are rare events (per-node MTBF ≫ the 24 h
/// observation window), so 4096 instants cover any plausible window.
const EVICTION_LOG_CAP: usize = 4096;

impl EvictionLog {
    /// Records an eviction at `now`.
    pub fn record(&mut self, now: i64) {
        if self.times.len() == EVICTION_LOG_CAP {
            self.times.pop_front();
        }
        self.times.push_back(now);
    }

    /// Evictions recorded within the trailing `window` seconds.
    pub fn count(&self, now: i64, window: i64) -> u32 {
        let cutoff = now - window;
        self.times
            .iter()
            .rev()
            .take_while(|&&t| t >= cutoff)
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_injects_nothing() {
        let m = FaultModel::none();
        assert!(m.is_none());
        assert!(m.node_schedule(128).is_empty());
        assert_eq!(m.job_fails(1, 1), None);
        assert_eq!(FaultModel::default(), m);
    }

    #[test]
    fn presets_are_ordered_by_severity() {
        let mo = FaultModel::moderate(1);
        let se = FaultModel::severe(1);
        assert!(se.mtbf < mo.mtbf, "severe crashes more often");
        assert!(se.job_fail_prob > mo.job_fail_prob);
        assert!(!mo.is_none() && !se.is_none());
    }

    #[test]
    fn job_failure_draw_is_a_pure_function_of_id_and_attempt() {
        let m = FaultModel::severe(9);
        for id in 0..200u64 {
            for attempt in 1..4u32 {
                assert_eq!(m.job_fails(id, attempt), m.job_fails(id, attempt));
            }
        }
        // Roughly `job_fail_prob` of attempts fail, and the failure point
        // is a valid runtime fraction.
        let fails: Vec<f64> = (0..5000u64).filter_map(|id| m.job_fails(id, 1)).collect();
        let rate = fails.len() as f64 / 5000.0;
        assert!((rate - m.job_fail_prob).abs() < 0.02, "rate {rate}");
        assert!(fails.iter().all(|&f| f > 0.0 && f <= 1.0));
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let r = RetryPolicy {
            max_attempts: 4,
            backoff_base: 60,
            backoff_cap: 300,
        };
        assert_eq!(r.delay(1), 60);
        assert_eq!(r.delay(2), 120);
        assert_eq!(r.delay(3), 240);
        assert_eq!(r.delay(4), 300, "capped");
        assert_eq!(r.delay(60), 300, "shift-safe far past the cap");
        assert!(r.allows(3) && !r.allows(4));
        let never = RetryPolicy {
            max_attempts: 1,
            ..r
        };
        assert!(!never.allows(1));
    }

    #[test]
    fn eviction_log_counts_the_trailing_window() {
        let mut log = EvictionLog::default();
        for t in [100, 200, 5000, 9000] {
            log.record(t);
        }
        assert_eq!(log.count(9000, 100), 1);
        assert_eq!(log.count(9000, 5000), 2, "cutoff 4000 excludes 100/200");
        assert_eq!(log.count(9000, 8800), 3, "cutoff 200 is inclusive");
        assert_eq!(log.count(9000, 100_000), 4);
        assert_eq!(log.count(100_000, 100), 0);
    }

    #[test]
    fn eviction_log_is_bounded() {
        let mut log = EvictionLog::default();
        for t in 0..(EVICTION_LOG_CAP as i64 + 500) {
            log.record(t);
        }
        assert_eq!(
            log.count(i64::MAX / 2, i64::MAX / 2),
            EVICTION_LOG_CAP as u32
        );
    }

    #[test]
    fn fault_model_validation_rejects_unsound_fields() {
        assert!(FaultModel::none().validate().is_ok());
        assert!(FaultModel::moderate(1).validate().is_ok());
        assert!(FaultModel::severe(1).validate().is_ok());

        let nan = FaultModel {
            job_fail_prob: f64::NAN,
            ..FaultModel::none()
        };
        let err = nan.validate().unwrap_err();
        assert_eq!(err.field, "faults.job_fail_prob");
        assert!(err.to_string().contains("finite"), "message: {err}");

        for bad_prob in [-0.1, 1.5, f64::INFINITY] {
            let m = FaultModel {
                job_fail_prob: bad_prob,
                ..FaultModel::none()
            };
            assert!(m.validate().is_err(), "prob {bad_prob} must be rejected");
        }
        for (field, m) in [
            (
                "faults.mtbf",
                FaultModel {
                    mtbf: -1,
                    ..FaultModel::none()
                },
            ),
            (
                "faults.mttr",
                FaultModel {
                    mttr: -HOUR,
                    ..FaultModel::none()
                },
            ),
            (
                "faults.horizon",
                FaultModel {
                    horizon: -1,
                    ..FaultModel::none()
                },
            ),
        ] {
            assert_eq!(m.validate().unwrap_err().field, field);
        }
    }

    #[test]
    fn retry_policy_validation_rejects_negative_backoff() {
        assert!(RetryPolicy::default().validate().is_ok());
        let bad_base = RetryPolicy {
            backoff_base: -1,
            ..RetryPolicy::default()
        };
        assert_eq!(bad_base.validate().unwrap_err().field, "retry.backoff_base");
        let bad_cap = RetryPolicy {
            backoff_cap: -MINUTE,
            ..RetryPolicy::default()
        };
        assert_eq!(bad_cap.validate().unwrap_err().field, "retry.backoff_cap");
    }
}
