//! The fast, event-driven Slurm simulator.
//!
//! Exposes the agent-facing interface the paper describes in §5.1:
//! [`Simulator::submit`] injects a job, [`Simulator::step`] advances
//! simulated time, and [`Simulator::sample`] returns the observable
//! cluster state. Scheduling passes run exactly when an arrival or
//! completion changes the system, which is what makes replaying a month of
//! trace take well under a minute.

use std::collections::HashMap;

use mirage_trace::{JobRecord, DAY};
use serde::{Deserialize, Serialize};

use crate::admission::{prepare_admission, RecentStarts};
use crate::backfill::{plan_schedule_into, BackfillPolicy, PendingView, PlanScratch};
use crate::event::{Event, EventKind, EventQueue};
use crate::fault::{EvictionLog, FaultModel, FaultStats, JobFaults, RetryPolicy, SimConfigError};
use crate::hetero::{scale_runtime, HeteroModel, HeteroStats};
use crate::metrics::{ServiceUsage, SimMetrics};
use crate::priority::{priority, FairshareTracker, PriorityWeights};
use crate::snapshot::{ClusterSnapshot, QueuedJobView, RunningJobView};

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Nodes in the partition.
    pub nodes: u32,
    /// Multifactor priority weights.
    pub weights: PriorityWeights,
    /// Backfill flavor.
    pub backfill: BackfillPolicy,
    /// Reject jobs that request more nodes than the partition has. When
    /// `false` such jobs pend forever (they can still be cleaned upstream).
    pub reject_oversized: bool,
    /// At most this many queued jobs are considered per scheduling pass,
    /// taken in priority order (Slurm's `bf_max_job_test`). Bounds the cost
    /// of a pass when the backlog explodes.
    pub sched_depth: usize,
    /// Fault injection: node crash/recovery processes and transient job
    /// failures. [`FaultModel::none`] (the default) injects nothing.
    #[serde(default)]
    pub faults: FaultModel,
    /// How evicted / failed jobs re-enter the queue.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Heterogeneous node pools and placement-sensitive contention.
    /// [`HeteroModel::none`] (the default) keeps the homogeneous
    /// single-counter model.
    #[serde(default)]
    pub hetero: HeteroModel,
}

impl SimConfig {
    /// Default configuration for a partition of `nodes` nodes.
    pub fn new(nodes: u32) -> Self {
        Self {
            nodes,
            weights: PriorityWeights::default(),
            backfill: BackfillPolicy::default(),
            reject_oversized: true,
            sched_depth: 512,
            faults: FaultModel::none(),
            retry: RetryPolicy::default(),
            hetero: HeteroModel::none(),
        }
    }

    /// Rejects configurations that cannot run a sound simulation: an
    /// empty partition, a zero scheduling depth, or fault/retry fields
    /// their own `validate()`s reject. Called by
    /// [`SimBuilder::try_build`](crate::backend::SimBuilder::try_build)
    /// so bad configs fail at build time with a typed error.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.nodes == 0 {
            return Err(SimConfigError {
                field: "nodes",
                value: "0".to_string(),
                reason: "partition needs at least one node",
            });
        }
        if self.sched_depth == 0 {
            return Err(SimConfigError {
                field: "sched_depth",
                value: "0".to_string(),
                reason: "each scheduling pass must consider at least one job",
            });
        }
        self.faults.validate()?;
        self.hetero.validate(self.nodes)?;
        self.retry.validate()
    }
}

/// Lifecycle state of a job inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Known but not yet submitted (future trace arrival).
    Future,
    /// In the queue.
    Pending,
    /// Dispatched; payload is the start time.
    Running {
        /// Dispatch instant.
        start: i64,
    },
    /// Finished; payload is `(start, end)`.
    Completed {
        /// Dispatch instant.
        start: i64,
        /// Completion instant.
        end: i64,
    },
    /// Rejected (cannot ever fit).
    Rejected,
    /// Evicted or failed mid-run and out of retry attempts; payload is
    /// the last attempt's `(start, end)`.
    Failed {
        /// Last attempt's dispatch instant.
        start: i64,
        /// Instant the last attempt died.
        end: i64,
    },
}

#[derive(Debug, Clone)]
struct SimJob {
    record: JobRecord,
    status: JobStatus,
    /// Index of this job inside `running` while it runs (kept current by
    /// swap-remove fixups), so completion never scans the running list.
    run_slot: usize,
    /// How many times this job has started (1-based once running; also
    /// the epoch stamped on its in-flight completion event).
    attempt: u32,
    /// Instant of the last eviction (meaningful while awaiting a retry).
    evicted_at: i64,
    /// Per-job fault ledger: evictions suffered and service downtime.
    faults: JobFaults,
    /// Nodes held per pool while running (empty on a homogeneous
    /// partition; indexed like `HeteroModel::pools`).
    pool_alloc: Vec<u32>,
    /// Whether the current attempt's placement drew a slowdown (> 1.0
    /// runtime scale), for the contention metric.
    slowed: bool,
}

/// Event-driven Slurm simulator.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    now: i64,
    free_nodes: u32,
    /// Crashed nodes (capacity the scheduler cannot see until recovery).
    down_nodes: u32,
    /// Per-pool free-node counts (empty on a homogeneous partition).
    /// Invariant per pool: `free + allocated + down == pool.nodes`.
    pool_free: Vec<u32>,
    hetero_stats: HeteroStats,
    /// Running jobs whose current placement drew a slowdown.
    contended_running: u32,
    fault_stats: FaultStats,
    evictions_log: EvictionLog,
    jobs: Vec<SimJob>,
    id_map: HashMap<u64, usize>,
    pending: Vec<usize>,
    running: Vec<usize>, // arena indices of running jobs (≤ nodes entries)
    events: EventQueue,
    fairshare: FairshareTracker,
    busy_node_seconds: f64,
    first_submit: Option<i64>,
    rejected: usize,
    next_id: u64,
    recent_starts: RecentStarts,
    /// Lower bound on the smallest node request among pending jobs.
    /// `plan_schedule` can only ever start a job whose request fits in
    /// `free_nodes` (both the priority and the backfill phase check it),
    /// so a pass with `free_nodes < min_pending_nodes` is provably a
    /// no-op and is skipped wholesale — on a congested cluster that is
    /// most passes. Kept as a *lower* bound (arrivals tighten it, starts
    /// trigger an exact recompute), so staleness only costs a redundant
    /// pass, never skips a productive one.
    min_pending_nodes: u32,
    // Completion bookkeeping, maintained incrementally at completion time
    // so `completed()`/`metrics()` never re-filter or sort the job arena:
    // `completed_order` holds arena indices sorted by `(end, id)` (ends
    // arrive non-decreasing; same-end ties are fixed up with local swaps),
    // and the aggregate sums make `metrics()` O(1).
    completed_order: Vec<usize>,
    wait_sum: f64,
    jct_sum: f64,
    last_end: i64,
    first_completed_submit: Option<i64>,
    // Scratch buffers reused across scheduling passes (perf-book: reuse
    // workhorse collections instead of reallocating in the hot loop).
    scratch_order: Vec<(f64, i64, u64, usize)>,
    scratch_views: Vec<PendingView>,
    scratch_releases: Vec<(i64, u32)>,
    scratch_starts: Vec<usize>,
    scratch_plan: PlanScratch,
}

impl Simulator {
    /// Creates an idle cluster at time 0. A non-`none` fault model loads
    /// its full crash/recovery tape into the event queue up front, so the
    /// same config (and seed) always replays the same faults.
    pub fn new(cfg: SimConfig) -> Self {
        let free_nodes = cfg.nodes;
        let pool_free = if cfg.hetero.is_none() {
            Vec::new()
        } else {
            cfg.hetero.pool_totals()
        };
        let mut sim = Self {
            cfg,
            now: 0,
            free_nodes,
            down_nodes: 0,
            pool_free,
            hetero_stats: HeteroStats::default(),
            contended_running: 0,
            fault_stats: FaultStats::default(),
            evictions_log: EvictionLog::default(),
            jobs: Vec::new(),
            id_map: HashMap::new(),
            pending: Vec::new(),
            running: Vec::new(),
            events: EventQueue::new(),
            fairshare: FairshareTracker::new(),
            busy_node_seconds: 0.0,
            first_submit: None,
            rejected: 0,
            next_id: 1,
            recent_starts: RecentStarts::default(),
            min_pending_nodes: u32::MAX,
            completed_order: Vec::new(),
            wait_sum: 0.0,
            jct_sum: 0.0,
            last_end: 0,
            first_completed_submit: None,
            scratch_order: Vec::new(),
            scratch_views: Vec::new(),
            scratch_releases: Vec::new(),
            scratch_starts: Vec::new(),
            scratch_plan: PlanScratch::default(),
        };
        for ev in sim.cfg.faults.node_schedule(sim.cfg.nodes) {
            let kind = if ev.up {
                EventKind::NodeUp
            } else {
                EventKind::NodeDown
            };
            sim.events.push(Event::new(ev.time, kind, ev.node as usize));
        }
        sim
    }

    /// Current simulated time.
    pub fn now(&self) -> i64 {
        self.now
    }

    /// Idle node count.
    pub fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Partition size.
    pub fn total_nodes(&self) -> u32 {
        self.cfg.nodes
    }

    /// Nodes physically available right now (total minus crashed).
    pub fn available_nodes(&self) -> u32 {
        self.cfg.nodes - self.down_nodes
    }

    /// Nodes currently crashed.
    pub fn down_nodes(&self) -> u32 {
        self.down_nodes
    }

    /// Fault evictions within the trailing `window` seconds.
    pub fn recent_evictions(&self, window: i64) -> u32 {
        self.evictions_log.count(self.now, window)
    }

    /// Aggregate fault counters of the run so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Per-pool free-node counts (empty on a homogeneous partition).
    pub fn pool_free(&self) -> Vec<u32> {
        self.pool_free.clone()
    }

    /// Per-pool node totals (empty on a homogeneous partition).
    pub fn pool_total(&self) -> Vec<u32> {
        if self.cfg.hetero.is_none() {
            Vec::new()
        } else {
            self.cfg.hetero.pool_totals()
        }
    }

    /// Aggregate heterogeneity counters of the run so far.
    pub fn hetero_stats(&self) -> HeteroStats {
        self.hetero_stats
    }

    /// Running jobs whose current placement drew a contention slowdown.
    pub fn contended_running(&self) -> u32 {
        self.contended_running
    }

    /// Per-job fault ledger by id (zero for unknown ids and untouched jobs).
    pub fn job_faults(&self, id: u64) -> JobFaults {
        self.id_map
            .get(&id)
            .map_or_else(JobFaults::default, |&i| self.jobs[i].faults)
    }

    /// Simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Loads a trace of future arrivals. Jobs with `submit <= now` arrive
    /// immediately on the next event processing. Ids are preserved if
    /// unique, otherwise reassigned.
    pub fn load_trace(&mut self, jobs: &[JobRecord]) {
        for j in jobs {
            self.insert_future(j.clone());
        }
    }

    /// Submits a job *now* (the agent-facing call): the job's submit time
    /// is overridden to the current instant. Returns the id under which the
    /// simulator tracks it.
    pub fn submit(&mut self, mut job: JobRecord) -> u64 {
        job.submit = self.now;
        self.insert_future(job)
    }

    fn insert_future(&mut self, mut job: JobRecord) -> u64 {
        let (id, submit) = prepare_admission(
            &mut job,
            self.now,
            &self.id_map,
            &mut self.next_id,
            &mut self.first_submit,
        );
        let idx = self.jobs.len();
        self.jobs.push(SimJob {
            record: job,
            status: JobStatus::Future,
            run_slot: usize::MAX,
            attempt: 0,
            evicted_at: 0,
            faults: JobFaults::default(),
            pool_alloc: Vec::new(),
            slowed: false,
        });
        self.id_map.insert(id, idx);
        // Steady-state allocation hygiene: every job contributes at most
        // one live event, one pending slot and one completion slot, so
        // paying that capacity here (amortized, at admission time) keeps
        // arrivals/starts/completions in the hot loop off the allocator.
        let cap = self.jobs.len() + 1;
        self.events.reserve_total(cap);
        if self.pending.capacity() < cap {
            self.pending.reserve(cap - self.pending.len());
        }
        if self.completed_order.capacity() < cap {
            self.completed_order
                .reserve(cap - self.completed_order.len());
        }
        self.events
            .push(Event::new(submit, EventKind::Arrival, idx));
        id
    }

    /// Observable cluster state at the current instant.
    pub fn sample(&self) -> ClusterSnapshot {
        let mut snap = ClusterSnapshot::default();
        self.sample_into(&mut snap);
        snap
    }

    /// Observable cluster state written into a caller-provided snapshot,
    /// **reusing** its `queued`/`running` vectors: once their capacity
    /// covers the backlog, repeated sampling never allocates. The result
    /// is identical to a fresh [`Simulator::sample`] — stale contents of
    /// `out` are fully overwritten.
    pub fn sample_into(&self, out: &mut ClusterSnapshot) {
        out.now = self.now;
        out.free_nodes = self.free_nodes;
        out.total_nodes = self.cfg.nodes;
        out.down_nodes = self.down_nodes;
        out.recent_evictions = self.evictions_log.count(self.now, DAY);
        out.pool_free.clear();
        out.pool_total.clear();
        out.contended_running = 0;
        if !self.cfg.hetero.is_none() {
            out.pool_free.extend_from_slice(&self.pool_free);
            out.pool_total
                .extend(self.cfg.hetero.pools.iter().map(|p| p.nodes));
            out.contended_running = self.contended_running;
        }
        out.queued.clear();
        out.queued.extend(self.pending.iter().map(|&i| {
            let r = &self.jobs[i].record;
            QueuedJobView {
                id: r.id,
                nodes: r.nodes,
                submit: r.submit,
                age: self.now - r.submit,
                timelimit: r.timelimit,
                user: r.user,
            }
        }));
        out.running.clear();
        out.running.extend(self.running.iter().map(|&i| {
            let j = &self.jobs[i];
            let start = match j.status {
                JobStatus::Running { start } => start,
                _ => unreachable!("running list holds only running jobs"),
            };
            RunningJobView {
                id: j.record.id,
                nodes: j.record.nodes,
                start,
                elapsed: self.now - start,
                timelimit: j.record.timelimit,
                user: j.record.user,
            }
        }));
    }

    /// Status of a job by id.
    pub fn job_status(&self, id: u64) -> Option<JobStatus> {
        self.id_map.get(&id).map(|&i| self.jobs[i].status)
    }

    /// Advances simulated time by `dt` seconds, processing every event in
    /// the window. Non-positive `dt` is a no-op: stepping backwards (or
    /// nowhere) must not re-process events or corrupt the event order.
    pub fn step(&mut self, dt: i64) {
        if dt <= 0 {
            return;
        }
        self.run_until(self.now + dt);
    }

    /// Returns to an idle cluster at time 0 with the same configuration,
    /// dropping all loaded jobs and history.
    pub fn reset(&mut self) {
        *self = Simulator::new(self.cfg.clone());
    }

    /// Advances simulated time to `t_end`, processing every event up to and
    /// including that instant.
    pub fn run_until(&mut self, t_end: i64) {
        while let Some(t) = self.events.peek_time() {
            if t > t_end {
                break;
            }
            self.advance_clock(t);
            self.process_events_at(t);
            self.schedule_pass();
        }
        self.advance_clock(t_end);
    }

    /// Runs until no events remain (all loaded jobs completed or rejected).
    pub fn run_to_completion(&mut self) {
        while let Some(t) = self.events.peek_time() {
            self.advance_clock(t);
            self.process_events_at(t);
            self.schedule_pass();
        }
    }

    /// Whether any work remains (queued, running or future).
    pub fn is_active(&self) -> bool {
        !self.events.is_empty() || !self.pending.is_empty() || !self.running.is_empty()
    }

    /// Completed job records (start/end filled), ordered by `(end, id)`.
    ///
    /// `completed_order` is maintained incrementally at completion time,
    /// so this is a single pass over the completed set — no arena filter,
    /// no sort — and `metrics()` during an episode stays cheap.
    pub fn completed(&self) -> Vec<JobRecord> {
        self.completed_order
            .iter()
            .map(|&i| self.jobs[i].record.clone())
            .collect()
    }

    /// Mean queue wait of jobs that *started* within the trailing `window`
    /// seconds — the observable statistic behind the paper's `avg`
    /// heuristic baseline. `None` if nothing started in the window.
    pub fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        self.recent_starts.avg(self.now, window)
    }

    /// Aggregate metrics of the run so far — O(1), computed from sums
    /// maintained at completion time (identical numbers to
    /// [`SimMetrics::from_completed`] over [`Simulator::completed`]: the
    /// summed quantities are exact integers in f64, so completion order
    /// cannot change the result).
    pub fn metrics(&self) -> SimMetrics {
        let span = (self.now - self.first_submit.unwrap_or(0)).max(0);
        let n = self.completed_order.len();
        let first_submit = self.first_completed_submit.unwrap_or(0);
        let last_end = if n == 0 { first_submit } else { self.last_end };
        let utilization = if span > 0 && self.cfg.nodes > 0 {
            self.busy_node_seconds / (f64::from(self.cfg.nodes) * span as f64)
        } else {
            0.0
        };
        SimMetrics {
            completed_jobs: n,
            rejected_jobs: self.rejected,
            makespan: last_end - first_submit,
            avg_wait: if n == 0 {
                0.0
            } else {
                self.wait_sum / n as f64
            },
            avg_jct: if n == 0 { 0.0 } else { self.jct_sum / n as f64 },
            utilization,
            failed_jobs: self.fault_stats.failed_jobs as usize,
        }
    }

    /// Per-user accounting ledger: `user`'s current queued/running
    /// footprint plus completed consumption. One allocation-free pass
    /// over the pending/running lists and the completed set (all three
    /// are index lists into the job arena).
    pub fn user_usage(&self, user: u32) -> ServiceUsage {
        let mut usage = ServiceUsage::empty(user);
        for &i in &self.pending {
            let r = &self.jobs[i].record;
            if r.user == user {
                usage.queued += 1;
                usage.queued_nodes += u64::from(r.nodes);
            }
        }
        for &i in &self.running {
            let r = &self.jobs[i].record;
            if r.user == user {
                usage.running += 1;
                usage.running_nodes += u64::from(r.nodes);
            }
        }
        for &i in &self.completed_order {
            let r = &self.jobs[i].record;
            if r.user != user {
                continue;
            }
            let start = r.start.expect("completed jobs have a start");
            let end = r.end.expect("completed jobs have an end");
            usage.completed += 1;
            usage.node_seconds += f64::from(r.nodes) * (end - start) as f64;
            usage.wait_sum += start - r.submit;
        }
        usage
    }

    fn advance_clock(&mut self, t: i64) {
        if t <= self.now {
            return;
        }
        let dt = (t - self.now) as f64;
        self.busy_node_seconds +=
            f64::from(self.cfg.nodes - self.free_nodes - self.down_nodes) * dt;
        self.now = t;
    }

    /// Fires all events at exactly time `t` (completions first — the event
    /// queue orders them ahead of arrivals).
    fn process_events_at(&mut self, t: i64) {
        while self.events.peek_time() == Some(t) {
            let ev = self.events.pop().expect("peeked");
            match ev.kind {
                EventKind::NodeUp => self.node_up(ev.job),
                EventKind::Completion => self.complete_job(ev.job, ev.epoch),
                EventKind::JobFail => self.fail_job_attempt(ev.job, ev.epoch),
                EventKind::NodeDown => self.node_down(ev.job),
                EventKind::Arrival => self.arrive_job(ev.job),
            }
        }
    }

    fn arrive_job(&mut self, idx: usize) {
        let job = &mut self.jobs[idx];
        debug_assert!(matches!(job.status, JobStatus::Future));
        if self.cfg.reject_oversized && job.record.nodes > self.cfg.nodes {
            job.status = JobStatus::Rejected;
            self.rejected += 1;
            return;
        }
        job.status = JobStatus::Pending;
        self.min_pending_nodes = self.min_pending_nodes.min(job.record.nodes);
        self.pending.push(idx);
    }

    fn complete_job(&mut self, idx: usize, epoch: u32) {
        let now = self.now;
        let job = &mut self.jobs[idx];
        // An eviction strands the old attempt's in-flight completion event;
        // the epoch stamp identifies it so a re-queued attempt is not
        // completed early by its predecessor's ghost.
        let JobStatus::Running { start } = job.status else {
            return;
        };
        if job.attempt != epoch {
            return;
        }
        if job.attempt > 1 {
            self.fault_stats.retry_successes += 1;
        }
        job.status = JobStatus::Completed { start, end: now };
        job.record.start = Some(start);
        job.record.end = Some(now);
        self.free_nodes += job.record.nodes;
        if !self.cfg.hetero.is_none() {
            for (c, f) in job.pool_alloc.iter_mut().zip(self.pool_free.iter_mut()) {
                *f += *c;
                *c = 0;
            }
            if job.slowed {
                self.contended_running -= 1;
                job.slowed = false;
            }
        }
        let consumed = f64::from(job.record.nodes) * (now - start) as f64;
        let user = job.record.user;
        let submit = job.record.submit;
        let id = job.record.id;
        self.fairshare.record(user, consumed);

        // O(1) removal from the running list via the stored slot index.
        let slot = job.run_slot;
        debug_assert_eq!(self.running[slot], idx, "stale running slot");
        self.running.swap_remove(slot);
        if let Some(&moved) = self.running.get(slot) {
            self.jobs[moved].run_slot = slot;
        }

        // Incremental completion bookkeeping: ends arrive non-decreasing,
        // so `completed_order` stays `(end, id)`-sorted with at most a few
        // swaps inside the same-end tie run.
        self.completed_order.push(idx);
        let mut i = self.completed_order.len() - 1;
        while i > 0 {
            let prev = self.completed_order[i - 1];
            let prev_rec = &self.jobs[prev].record;
            if prev_rec.end == Some(now) && prev_rec.id > id {
                self.completed_order.swap(i - 1, i);
                i -= 1;
            } else {
                break;
            }
        }
        self.wait_sum += (start - submit) as f64;
        self.jct_sum += (now - submit) as f64;
        self.last_end = self.last_end.max(now);
        self.first_completed_submit = Some(
            self.first_completed_submit
                .map_or(submit, |f| f.min(submit)),
        );
    }

    fn start_job(&mut self, idx: usize) {
        let now = self.now;
        let job = &mut self.jobs[idx];
        debug_assert!(matches!(job.status, JobStatus::Pending));
        self.recent_starts.record(now, now - job.record.submit);
        job.status = JobStatus::Running { start: now };
        job.attempt += 1;
        if job.attempt > 1 {
            // Downtime the eviction inflicted: eviction instant → restart.
            job.faults.downtime += now - job.evicted_at;
        }
        self.free_nodes -= job.record.nodes;
        // Jobs are killed at their wall-clock limit.
        let mut run = job.record.runtime.min(job.record.timelimit);
        if !self.cfg.hetero.is_none() {
            // Pool placement: fill the named kind first, then spill in
            // declaration order. The resulting scale folds pool speed and
            // any contention slowdown into the effective runtime (still
            // capped by the wall-clock limit).
            let placed = self.cfg.hetero.place(
                &mut self.pool_free,
                &job.record.pool,
                job.record.nodes,
                job.record.id,
                job.attempt,
                &mut job.pool_alloc,
            );
            self.hetero_stats.record(&placed);
            job.slowed = placed.scale > 1.0;
            if job.slowed {
                self.contended_running += 1;
            }
            run = scale_runtime(run, placed.scale).min(job.record.timelimit);
        }
        let ev = match self.cfg.faults.job_fails(job.record.id, job.attempt) {
            Some(frac) if run > 0 => {
                // Transient mid-run death at a deterministic fraction of
                // the runtime — strictly before the clean completion.
                let at = ((run as f64 * frac).ceil() as i64).clamp(1, run);
                Event {
                    time: now + at,
                    kind: EventKind::JobFail,
                    job: idx,
                    epoch: job.attempt,
                }
            }
            _ => Event {
                time: now + run,
                kind: EventKind::Completion,
                job: idx,
                epoch: job.attempt,
            },
        };
        job.run_slot = self.running.len();
        self.running.push(idx);
        self.events.push(ev);
    }

    /// A crashed node recovered. `node` is the crashed node's index, which
    /// maps the recovery back to its pool on a heterogeneous partition.
    fn node_up(&mut self, node: usize) {
        self.fault_stats.node_recoveries += 1;
        debug_assert!(self.down_nodes > 0, "recovery without a crash");
        self.down_nodes -= 1;
        self.free_nodes += 1;
        if !self.cfg.hetero.is_none() {
            let p = self.cfg.hetero.pool_of_node(node as u32);
            self.pool_free[p] += 1;
        }
    }

    /// A node crashed. An idle node absorbs the crash silently; otherwise
    /// the most recently started running job (LIFO victim rule — the
    /// least sunk work) is evicted and one of its freed nodes marked down.
    /// On a heterogeneous partition the crash is pool-local: `node`'s pool
    /// must absorb it, and the victim is the most recently started job
    /// holding nodes *in that pool*.
    fn node_down(&mut self, node: usize) {
        self.fault_stats.node_crashes += 1;
        self.down_nodes += 1;
        if !self.cfg.hetero.is_none() {
            let p = self.cfg.hetero.pool_of_node(node as u32);
            if self.pool_free[p] == 0 {
                let victim = self
                    .running
                    .iter()
                    .copied()
                    .filter(|&i| self.jobs[i].pool_alloc.get(p).is_some_and(|&c| c > 0))
                    .max_by_key(|&i| match self.jobs[i].status {
                        JobStatus::Running { start } => (start, self.jobs[i].record.id),
                        _ => unreachable!("running list holds only running jobs"),
                    });
                let Some(victim) = victim else {
                    unreachable!("crashed pool fully busy but hosts no job");
                };
                self.evict_job(victim);
            }
            self.pool_free[p] -= 1;
            self.free_nodes -= 1;
            return;
        }
        if self.free_nodes > 0 {
            self.free_nodes -= 1;
            return;
        }
        let victim = self
            .running
            .iter()
            .copied()
            .max_by_key(|&i| match self.jobs[i].status {
                JobStatus::Running { start } => (start, self.jobs[i].record.id),
                _ => unreachable!("running list holds only running jobs"),
            });
        let Some(victim) = victim else {
            unreachable!("no free nodes and nothing running on a crash");
        };
        self.evict_job(victim);
        self.free_nodes -= 1;
    }

    /// A running attempt died mid-run (transient failure). Stale events
    /// from already-evicted attempts are dropped via the epoch stamp.
    fn fail_job_attempt(&mut self, idx: usize, epoch: u32) {
        let job = &self.jobs[idx];
        if !matches!(job.status, JobStatus::Running { .. }) || job.attempt != epoch {
            return;
        }
        self.fault_stats.job_failures += 1;
        self.evict_job(idx);
    }

    /// Tears a running job down mid-run: frees its nodes, charges the
    /// partial run to fairshare, then either re-queues it under the retry
    /// policy's backoff or fails it terminally.
    fn evict_job(&mut self, idx: usize) {
        let now = self.now;
        let job = &mut self.jobs[idx];
        let JobStatus::Running { start } = job.status else {
            unreachable!("evicting a non-running job");
        };
        self.free_nodes += job.record.nodes;
        if !self.cfg.hetero.is_none() {
            for (c, f) in job.pool_alloc.iter_mut().zip(self.pool_free.iter_mut()) {
                *f += *c;
                *c = 0;
            }
            if job.slowed {
                self.contended_running -= 1;
                job.slowed = false;
            }
        }
        let consumed = f64::from(job.record.nodes) * (now - start) as f64;
        self.fairshare.record(job.record.user, consumed);
        job.faults.evictions += 1;
        job.evicted_at = now;
        let attempt = job.attempt;

        let slot = job.run_slot;
        debug_assert_eq!(self.running[slot], idx, "stale running slot");
        self.running.swap_remove(slot);
        if let Some(&moved) = self.running.get(slot) {
            self.jobs[moved].run_slot = slot;
        }

        self.fault_stats.evictions += 1;
        self.evictions_log.record(now);

        let job = &mut self.jobs[idx];
        if self.cfg.retry.allows(attempt) {
            self.fault_stats.retries += 1;
            job.status = JobStatus::Future;
            let delay = self.cfg.retry.delay(attempt);
            self.events
                .push(Event::new(now + delay, EventKind::Arrival, idx));
        } else {
            self.fault_stats.failed_jobs += 1;
            job.status = JobStatus::Failed { start, end: now };
            job.record.start = Some(start);
            job.record.end = Some(now);
        }
    }

    /// One scheduling pass: priority ordering + backfill plan + starts.
    ///
    /// Only the `sched_depth` highest-priority queued jobs are examined
    /// (Slurm's `bf_max_job_test`), keeping the pass cheap even with a
    /// multi-thousand-job backlog.
    fn schedule_pass(&mut self) {
        // Provably-futile passes (nothing pending, or no pending job fits
        // in the free nodes) are skipped outright; see `min_pending_nodes`.
        if self.pending.is_empty() || self.free_nodes < self.min_pending_nodes {
            return;
        }
        let capacity_ns = f64::from(self.cfg.nodes) * self.cfg.weights.fairshare_halflife as f64;
        self.fairshare
            .decay_to(self.now, self.cfg.weights.fairshare_halflife);

        let w = self.cfg.weights;
        let now = self.now;
        let total = self.cfg.nodes;

        // (−priority, submit, id, idx): ascending sort gives descending
        // priority with FIFO tie-breaks, no hashing in the hot loop.
        let order = &mut self.scratch_order;
        order.clear();
        order.reserve(self.pending.len());
        for &i in &self.pending {
            let r = &self.jobs[i].record;
            let usage = self.fairshare.normalized_usage(r.user, capacity_ns);
            let p = priority(&w, now - r.submit, r.nodes, total, usage);
            order.push((-p, r.submit, r.id, i));
        }
        // total_cmp on the leading (finite, non-NaN) priority key:
        // branchless float compares make this per-event sort noticeably
        // cheaper than partial_cmp + unwrap.
        let key_cmp = |a: &(f64, i64, u64, usize), b: &(f64, i64, u64, usize)| {
            a.0.total_cmp(&b.0)
                .then_with(|| (a.1, a.2, a.3).cmp(&(b.1, b.2, b.3)))
        };
        let depth = self.cfg.sched_depth.max(1);
        if order.len() > depth {
            order.select_nth_unstable_by(depth - 1, key_cmp);
            order.truncate(depth);
        }
        order.sort_unstable_by(key_cmp);

        self.scratch_views.clear();
        self.scratch_views
            .extend(order.iter().map(|&(_, _, _, i)| PendingView {
                nodes: self.jobs[i].record.nodes,
                timelimit: self.jobs[i].record.timelimit,
            }));
        self.scratch_releases.clear();
        self.scratch_releases.extend(self.running.iter().map(|&i| {
            let j = &self.jobs[i];
            let JobStatus::Running { start } = j.status else {
                unreachable!()
            };
            // The scheduler only knows the *limit*, not the real runtime.
            (start + j.record.timelimit, j.record.nodes)
        }));

        let mut starts = std::mem::take(&mut self.scratch_starts);
        // The planner sees only physically available capacity: crashed
        // nodes cannot host a reservation until they recover. Priority and
        // fairshare above keep the nominal partition size, matching how
        // Slurm's multifactor weights stay fixed across drained nodes.
        plan_schedule_into(
            &self.scratch_views,
            self.free_nodes,
            self.cfg.nodes - self.down_nodes,
            self.now,
            &self.scratch_releases,
            self.cfg.backfill,
            &mut self.scratch_plan,
            &mut starts,
        );
        if starts.is_empty() {
            self.scratch_starts = starts;
            return;
        }
        for &s in &starts {
            let idx = self.scratch_order[s].3;
            self.start_job(idx);
        }
        self.scratch_starts = starts;
        self.pending
            .retain(|&i| matches!(self.jobs[i].status, JobStatus::Pending));
        // Starts removed pending jobs: recompute the exact bound (cheap
        // relative to the pass that just ran).
        self.min_pending_nodes = self
            .pending
            .iter()
            .map(|&i| self.jobs[i].record.nodes)
            .min()
            .unwrap_or(u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::HOUR;

    fn job(id: u64, submit: i64, nodes: u32, runtime: i64, limit: i64) -> JobRecord {
        JobRecord::new(id, format!("j{id}"), 1, submit, nodes, limit, runtime)
    }

    fn sim(nodes: u32) -> Simulator {
        Simulator::new(SimConfig::new(nodes))
    }

    #[test]
    fn empty_cluster_starts_job_immediately() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 100, 2, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].start, Some(100));
        assert_eq!(done[0].end, Some(100 + HOUR));
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 0, 4, HOUR, 2 * HOUR), job(2, 10, 4, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done[0].start, Some(0));
        // Second job waits for the first to actually finish (1h), not its
        // 2h limit.
        assert_eq!(done[1].start, Some(HOUR));
        assert_eq!(done[1].wait(), Some(HOUR - 10));
    }

    #[test]
    fn backfill_lets_short_job_jump_ahead() {
        // 4 nodes; J1 takes 3 of them until t=2h (limit 4h → shadow at 4h).
        // J2 (4 nodes) blocks at its arrival; J3 (1 node, 30 min limit)
        // fits in the single free node and finishes before J2's shadow, so
        // EASY backfills it immediately at t=20.
        let mut s = sim(4);
        s.load_trace(&[
            job(1, 0, 3, 2 * HOUR, 4 * HOUR),
            job(2, 10, 4, HOUR, 2 * HOUR),
            job(3, 20, 1, HOUR / 2, HOUR / 2),
        ]);
        s.run_to_completion();
        let done = s.completed();
        let j3 = done.iter().find(|j| j.id == 3).unwrap();
        assert_eq!(j3.start, Some(20), "J3 backfills instantly");
        // J2 starts when J1 *actually* completes (2h), not at the 4h limit.
        let j2 = done.iter().find(|j| j.id == 2).unwrap();
        assert_eq!(j2.start, Some(2 * HOUR));
    }

    #[test]
    fn no_backfill_means_head_of_line_blocking() {
        let mut cfg = SimConfig::new(4);
        cfg.backfill = BackfillPolicy::None;
        let mut s = Simulator::new(cfg);
        // J1 fills the cluster; J2 (too big to fit beside J1) blocks J3
        // even though J3 would fit.
        s.load_trace(&[
            job(1, 0, 3, 2 * HOUR, 2 * HOUR),
            job(2, 10, 4, HOUR, HOUR),
            job(3, 20, 1, HOUR, HOUR),
        ]);
        s.run_until(HOUR);
        let snap = s.sample();
        assert_eq!(snap.running.len(), 1, "only J1 runs");
        assert_eq!(snap.queued.len(), 2, "J3 blocked behind J2");
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 0, 8, HOUR, HOUR)]);
        s.run_to_completion();
        assert_eq!(s.job_status(1), Some(JobStatus::Rejected));
        assert_eq!(s.metrics().rejected_jobs, 1);
        assert!(s.completed().is_empty());
    }

    #[test]
    fn submit_overrides_submit_time_to_now() {
        let mut s = sim(4);
        s.step(500);
        let id = s.submit(job(0, 42, 1, HOUR, HOUR));
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].submit, 500);
    }

    #[test]
    fn sample_reports_ages_and_elapsed() {
        let mut s = sim(2);
        s.load_trace(&[
            job(1, 0, 2, 4 * HOUR, 4 * HOUR),
            job(2, HOUR, 1, HOUR, HOUR),
        ]);
        s.run_until(2 * HOUR);
        let snap = s.sample();
        assert_eq!(snap.now, 2 * HOUR);
        assert_eq!(snap.running.len(), 1);
        assert_eq!(snap.running[0].elapsed, 2 * HOUR);
        assert_eq!(snap.queued.len(), 1);
        assert_eq!(snap.queued[0].age, HOUR);
        assert_eq!(snap.free_nodes, 0);
    }

    #[test]
    fn step_is_incremental_run_until() {
        let mut a = sim(2);
        let mut b = sim(2);
        let trace = vec![
            job(1, 0, 1, HOUR, HOUR),
            job(2, 30, 2, HOUR, 2 * HOUR),
            job(3, 60, 1, 2 * HOUR, 2 * HOUR),
        ];
        a.load_trace(&trace);
        b.load_trace(&trace);
        a.run_until(5 * HOUR);
        for _ in 0..10 {
            b.step(HOUR / 2);
        }
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn utilization_accounting_matches_by_hand() {
        let mut s = sim(2);
        // One 1-node job for 1h on a 2-node cluster, observed over 2h.
        s.load_trace(&[job(1, 0, 1, HOUR, HOUR)]);
        s.run_until(2 * HOUR);
        let m = s.metrics();
        // busy = 1 node × 1h = 3600 node-s; capacity = 2 × 7200.
        assert!((m.utilization - 3600.0 / 14400.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_ids_are_reassigned() {
        let mut s = sim(4);
        let a = s.submit(job(7, 0, 1, HOUR, HOUR));
        let b = s.submit(job(7, 0, 1, HOUR, HOUR));
        assert_eq!(a, 7);
        assert_ne!(b, 7);
        s.run_to_completion();
        assert_eq!(s.completed().len(), 2);
    }

    #[test]
    fn fairshare_pushes_hogs_back() {
        // User 1 monopolizes the cluster; then user 1 and user 2 submit
        // simultaneously — user 2 must start first.
        let mut s = sim(2);
        let mut hog = job(1, 0, 2, 10 * HOUR, 10 * HOUR);
        hog.user = 1;
        s.load_trace(&[hog]);
        s.run_until(10 * HOUR);
        let mut j_hog = job(2, 0, 2, HOUR, HOUR);
        j_hog.user = 1;
        let mut j_new = job(3, 0, 2, HOUR, HOUR);
        j_new.user = 2;
        s.submit(j_hog);
        s.submit(j_new);
        s.run_to_completion();
        let done = s.completed();
        let start_hog = done.iter().find(|j| j.id == 2).unwrap().start.unwrap();
        let start_new = done.iter().find(|j| j.id == 3).unwrap().start.unwrap();
        assert!(
            start_new < start_hog,
            "fresh user should preempt hog in queue order"
        );
    }

    #[test]
    fn runtime_capped_at_timelimit() {
        let mut s = sim(1);
        let mut j = job(1, 0, 1, 10 * HOUR, HOUR);
        j.runtime = 10 * HOUR; // claims 10h but limit is 1h
        s.load_trace(&[j]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done[0].end, Some(HOUR), "killed at the wall-clock limit");
    }

    #[test]
    fn non_positive_step_is_a_no_op() {
        let mut s = sim(2);
        s.load_trace(&[job(1, 50, 1, HOUR, HOUR)]);
        s.step(100);
        let before = s.sample();
        s.step(0);
        s.step(-3600);
        assert_eq!(s.now(), 100, "clock must not move");
        assert_eq!(s.sample(), before, "state must be untouched");
        // The event order survives: the run still completes normally.
        s.run_to_completion();
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn reset_restores_an_idle_cluster() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 0, 2, HOUR, HOUR)]);
        s.run_until(30 * 60);
        assert!(s.is_active());
        s.reset();
        assert_eq!(s.now(), 0);
        assert_eq!(s.free_nodes(), 4);
        assert!(!s.is_active());
        assert!(s.completed().is_empty());
        // Fully reusable after reset.
        s.load_trace(&[job(1, 10, 1, HOUR, HOUR)]);
        s.run_to_completion();
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn is_active_tracks_outstanding_work() {
        let mut s = sim(1);
        assert!(!s.is_active());
        s.load_trace(&[job(1, 100, 1, HOUR, HOUR)]);
        assert!(s.is_active());
        s.run_to_completion();
        assert!(!s.is_active());
    }

    #[test]
    fn node_crash_and_recovery_track_capacity() {
        let mut s = sim(2);
        s.events.push(Event::new(10, EventKind::NodeDown, 0));
        s.events.push(Event::new(20, EventKind::NodeUp, 0));
        s.run_until(15);
        assert_eq!(s.down_nodes(), 1);
        assert_eq!(s.free_nodes(), 1);
        assert_eq!(s.available_nodes(), 1);
        let snap = s.sample();
        assert_eq!(snap.down_nodes, 1);
        assert_eq!(snap.busy_nodes(), 0, "idle node absorbed the crash");
        s.run_until(25);
        assert_eq!(s.down_nodes(), 0);
        assert_eq!(s.free_nodes(), 2);
        let stats = s.fault_stats();
        assert_eq!((stats.node_crashes, stats.node_recoveries), (1, 1));
        assert_eq!(stats.evictions, 0, "nothing was running");
    }

    #[test]
    fn crash_evicts_running_job_which_retries_after_recovery() {
        let mut s = sim(1);
        s.load_trace(&[job(1, 0, 1, HOUR, 2 * HOUR)]);
        s.events.push(Event::new(100, EventKind::NodeDown, 0));
        s.events.push(Event::new(200, EventKind::NodeUp, 0));
        s.run_to_completion();
        // Evicted at 100, re-queued at 100 + 60 s backoff, but no capacity
        // until the node recovers at 200 — so the retry starts at 200 and
        // runs its full hour.
        let done = s.completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].start, Some(200));
        assert_eq!(done[0].end, Some(200 + HOUR));
        assert_eq!(done[0].submit, 0, "retry keeps the original submit");
        let stats = s.fault_stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.retry_successes, 1);
        assert_eq!(stats.failed_jobs, 0);
        let jf = s.job_faults(1);
        assert_eq!(jf.evictions, 1);
        assert_eq!(jf.downtime, 100, "evicted at 100, restarted at 200");
        assert_eq!(s.recent_evictions(DAY), 1);
    }

    #[test]
    fn transient_failure_retries_and_completes() {
        // Pick a job id whose first attempt dies but whose second survives,
        // so the retry path ends in a completion.
        let fm = FaultModel {
            job_fail_prob: 0.5,
            seed: 7,
            ..FaultModel::none()
        };
        let id = (1..500u64)
            .find(|&id| fm.job_fails(id, 1).is_some() && fm.job_fails(id, 2).is_none())
            .expect("some id fails once then succeeds");
        let mut cfg = SimConfig::new(1);
        cfg.faults = fm;
        let mut s = Simulator::new(cfg);
        s.load_trace(&[job(id, 0, 1, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        let end = done[0].end.unwrap();
        assert!(end > HOUR, "a failed first attempt must delay completion");
        let stats = s.fault_stats();
        assert_eq!(stats.job_failures, 1);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.retry_successes, 1);
        assert_eq!(s.metrics().failed_jobs, 0);
    }

    #[test]
    fn exhausted_retries_fail_terminally() {
        let mut cfg = SimConfig::new(1);
        cfg.faults = FaultModel {
            job_fail_prob: 1.0, // every attempt dies mid-run
            seed: 3,
            ..FaultModel::none()
        };
        cfg.retry.max_attempts = 2;
        let mut s = Simulator::new(cfg);
        s.load_trace(&[job(1, 0, 1, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        assert!(s.completed().is_empty());
        assert!(matches!(s.job_status(1), Some(JobStatus::Failed { .. })));
        let stats = s.fault_stats();
        assert_eq!(stats.evictions, 2, "both attempts died");
        assert_eq!(stats.retries, 1, "only the first eviction may retry");
        assert_eq!(stats.failed_jobs, 1);
        assert_eq!(s.metrics().failed_jobs, 1);
        assert_eq!(s.job_faults(1).evictions, 2);
    }

    #[test]
    fn crash_victim_is_the_most_recently_started_job() {
        // Two 1-node jobs; the second starts later. A crash at t=100 must
        // evict the late starter (least sunk work), not the early one.
        let mut s = sim(2);
        s.load_trace(&[job(1, 0, 1, HOUR, 2 * HOUR), job(2, 50, 1, HOUR, 2 * HOUR)]);
        s.events.push(Event::new(100, EventKind::NodeDown, 0));
        s.events.push(Event::new(150, EventKind::NodeUp, 0));
        s.run_to_completion();
        assert_eq!(s.job_faults(1).evictions, 0);
        assert_eq!(s.job_faults(2).evictions, 1);
        let done = s.completed();
        let j1 = done.iter().find(|j| j.id == 1).unwrap();
        assert_eq!(j1.end, Some(HOUR), "survivor is undisturbed");
    }

    #[test]
    fn faultless_config_leaves_event_queue_empty() {
        let s = sim(8);
        assert!(s.events.is_empty(), "FaultModel::none() loads no tape");
        assert_eq!(s.fault_stats(), FaultStats::default());
        assert_eq!(s.available_nodes(), 8);
        assert_eq!(s.recent_evictions(DAY), 0);
    }

    #[test]
    fn fault_schedule_survives_reset() {
        let mut cfg = SimConfig::new(4);
        cfg.faults = FaultModel::severe(11);
        let mut a = Simulator::new(cfg.clone());
        let trace: Vec<_> = (0..40u32)
            .map(|i| job(u64::from(i) + 1, i64::from(i) * 600, 2, 3 * HOUR, 4 * HOUR))
            .collect();
        a.load_trace(&trace);
        a.run_to_completion();
        let first = (a.completed(), a.fault_stats(), a.metrics());
        a.reset();
        a.load_trace(&trace);
        a.run_to_completion();
        assert_eq!(a.completed(), first.0, "reset replays the same crashes");
        assert_eq!(a.fault_stats(), first.1);
        assert_eq!(a.metrics(), first.2);
        assert!(first.1.node_crashes > 0, "severe model must actually crash");
    }

    fn hetero_sim(nodes: u32, hetero: crate::hetero::HeteroModel) -> Simulator {
        let mut cfg = SimConfig::new(nodes);
        cfg.hetero = hetero;
        cfg.validate().unwrap();
        Simulator::new(cfg)
    }

    #[test]
    fn fast_pool_shortens_runtimes() {
        use crate::hetero::{HeteroModel, NodePool};
        use mirage_trace::PoolRequest;
        // Contention 0 isolates the pure pool-speed scaling: a job demanding
        // the double-speed pool finishes in half its trace runtime.
        let m = HeteroModel::with_pools(
            vec![NodePool::new("a100", 2, 2.0), NodePool::new("v100", 6, 1.0)],
            0.0,
            1,
        );
        let mut s = hetero_sim(8, m);
        s.load_trace(&[
            job(1, 0, 2, HOUR, 2 * HOUR).with_pool(PoolRequest::Demand("a100".into())),
            job(2, 0, 2, HOUR, 2 * HOUR).with_pool(PoolRequest::Demand("v100".into())),
        ]);
        s.run_to_completion();
        let done = s.completed();
        let j1 = done.iter().find(|j| j.id == 1).unwrap();
        let j2 = done.iter().find(|j| j.id == 2).unwrap();
        assert_eq!(j1.end, Some(HOUR / 2), "a100 runs at 2x");
        assert_eq!(j2.end, Some(HOUR), "v100 is baseline speed");
        assert_eq!(s.pool_free(), vec![2, 6], "pools drain back to full");
        assert_eq!(s.pool_total(), vec![2, 6]);
        assert_eq!(s.contended_running(), 0);
        assert_eq!(s.hetero_stats().placements, 2);
        assert_eq!(s.hetero_stats().span_placements, 0);
    }

    #[test]
    fn spanning_placements_draw_a_contention_slowdown() {
        use crate::hetero::{HeteroModel, NodePool};
        // Equal-speed pools, contention on: a job wider than any single
        // pool must span, draw a slowdown, and show up in the contended
        // counter while it runs.
        let m = HeteroModel::with_pools(
            vec![NodePool::new("a", 2, 1.0), NodePool::new("b", 6, 1.0)],
            1.0,
            7,
        );
        let mut s = hetero_sim(8, m.clone());
        s.load_trace(&[job(1, 0, 8, HOUR, 3 * HOUR)]);
        s.step(1);
        assert_eq!(s.contended_running(), 1);
        assert_eq!(s.sample().contended_running, 1);
        s.run_to_completion();
        let stats = s.hetero_stats();
        assert_eq!(stats.span_placements, 1);
        assert_eq!(stats.slowdowns, 1);
        assert_eq!(s.contended_running(), 0, "completion releases the flag");
        let expected = crate::hetero::scale_runtime(HOUR, m.slowdown(1, 1));
        let done = s.completed();
        assert_eq!(done[0].end, Some(expected), "slowdown replays the draw");
        assert!(expected > HOUR);
    }

    #[test]
    fn node_crash_evicts_within_the_crashed_pool() {
        use crate::hetero::{HeteroModel, NodePool};
        use mirage_trace::PoolRequest;
        // Homogeneous LIFO would evict the most recently started job
        // (job 2); pool-aware eviction must pick the job actually holding
        // nodes in the crashed pool (job 1 on the a100 node 0).
        let m = HeteroModel::with_pools(
            vec![NodePool::new("a100", 1, 1.0), NodePool::new("v100", 1, 1.0)],
            0.0,
            1,
        );
        let mut s = hetero_sim(2, m);
        s.load_trace(&[
            job(1, 0, 1, 2 * HOUR, 3 * HOUR).with_pool(PoolRequest::Demand("a100".into())),
            job(2, 50, 1, 2 * HOUR, 3 * HOUR).with_pool(PoolRequest::Demand("v100".into())),
        ]);
        s.events.push(Event::new(100, EventKind::NodeDown, 0));
        s.events.push(Event::new(200, EventKind::NodeUp, 0));
        s.run_to_completion();
        assert_eq!(s.job_faults(1).evictions, 1, "pool-0 holder is the victim");
        assert_eq!(s.job_faults(2).evictions, 0, "later starter survives");
        assert_eq!(s.pool_free(), vec![1, 1]);
    }

    #[test]
    fn hetero_and_fault_tapes_both_survive_reset() {
        let mut cfg = SimConfig::new(8);
        cfg.hetero = crate::hetero::HeteroModel::balanced(8, 5);
        cfg.faults = FaultModel::severe(11);
        cfg.validate().unwrap();
        let mut s = Simulator::new(cfg);
        let trace: Vec<_> = (0..40u32)
            .map(|i| {
                job(
                    u64::from(i) + 1,
                    i64::from(i) * 600,
                    1 + i % 4,
                    3 * HOUR,
                    4 * HOUR,
                )
            })
            .collect();
        s.load_trace(&trace);
        s.run_to_completion();
        let first = (
            s.completed(),
            s.fault_stats(),
            s.hetero_stats(),
            s.metrics(),
        );
        assert!(first.2.slowdowns > 0, "balanced scenario must contend");
        s.reset();
        assert_eq!(s.pool_free(), s.pool_total(), "reset refills the pools");
        s.load_trace(&trace);
        s.run_to_completion();
        assert_eq!(s.completed(), first.0, "reset replays the same placements");
        assert_eq!(s.fault_stats(), first.1);
        assert_eq!(s.hetero_stats(), first.2);
        assert_eq!(s.metrics(), first.3);
    }
}
