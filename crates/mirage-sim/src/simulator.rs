//! The fast, event-driven Slurm simulator.
//!
//! Exposes the agent-facing interface the paper describes in §5.1:
//! [`Simulator::submit`] injects a job, [`Simulator::step`] advances
//! simulated time, and [`Simulator::sample`] returns the observable
//! cluster state. Scheduling passes run exactly when an arrival or
//! completion changes the system, which is what makes replaying a month of
//! trace take well under a minute.

use std::collections::HashMap;

use mirage_trace::JobRecord;
use serde::{Deserialize, Serialize};

use crate::admission::{prepare_admission, RecentStarts};
use crate::backfill::{plan_schedule, BackfillPolicy, PendingView};
use crate::event::{Event, EventKind, EventQueue};
use crate::metrics::SimMetrics;
use crate::priority::{priority, FairshareTracker, PriorityWeights};
use crate::snapshot::{ClusterSnapshot, QueuedJobView, RunningJobView};

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Nodes in the partition.
    pub nodes: u32,
    /// Multifactor priority weights.
    pub weights: PriorityWeights,
    /// Backfill flavor.
    pub backfill: BackfillPolicy,
    /// Reject jobs that request more nodes than the partition has. When
    /// `false` such jobs pend forever (they can still be cleaned upstream).
    pub reject_oversized: bool,
    /// At most this many queued jobs are considered per scheduling pass,
    /// taken in priority order (Slurm's `bf_max_job_test`). Bounds the cost
    /// of a pass when the backlog explodes.
    pub sched_depth: usize,
}

impl SimConfig {
    /// Default configuration for a partition of `nodes` nodes.
    pub fn new(nodes: u32) -> Self {
        Self {
            nodes,
            weights: PriorityWeights::default(),
            backfill: BackfillPolicy::default(),
            reject_oversized: true,
            sched_depth: 512,
        }
    }
}

/// Lifecycle state of a job inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Known but not yet submitted (future trace arrival).
    Future,
    /// In the queue.
    Pending,
    /// Dispatched; payload is the start time.
    Running {
        /// Dispatch instant.
        start: i64,
    },
    /// Finished; payload is `(start, end)`.
    Completed {
        /// Dispatch instant.
        start: i64,
        /// Completion instant.
        end: i64,
    },
    /// Rejected (cannot ever fit).
    Rejected,
}

#[derive(Debug, Clone)]
struct SimJob {
    record: JobRecord,
    status: JobStatus,
}

/// Event-driven Slurm simulator.
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    now: i64,
    free_nodes: u32,
    jobs: Vec<SimJob>,
    id_map: HashMap<u64, usize>,
    pending: Vec<usize>,
    running: Vec<usize>, // arena indices of running jobs (≤ nodes entries)
    events: EventQueue,
    fairshare: FairshareTracker,
    busy_node_seconds: f64,
    first_submit: Option<i64>,
    rejected: usize,
    next_id: u64,
    recent_starts: RecentStarts,
    // Scratch buffers reused across scheduling passes (perf-book: reuse
    // workhorse collections instead of reallocating in the hot loop).
    scratch_order: Vec<(f64, i64, u64, usize)>,
    scratch_views: Vec<PendingView>,
    scratch_releases: Vec<(i64, u32)>,
}

impl Simulator {
    /// Creates an idle cluster at time 0.
    pub fn new(cfg: SimConfig) -> Self {
        let free_nodes = cfg.nodes;
        Self {
            cfg,
            now: 0,
            free_nodes,
            jobs: Vec::new(),
            id_map: HashMap::new(),
            pending: Vec::new(),
            running: Vec::new(),
            events: EventQueue::new(),
            fairshare: FairshareTracker::new(),
            busy_node_seconds: 0.0,
            first_submit: None,
            rejected: 0,
            next_id: 1,
            recent_starts: RecentStarts::default(),
            scratch_order: Vec::new(),
            scratch_views: Vec::new(),
            scratch_releases: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> i64 {
        self.now
    }

    /// Idle node count.
    pub fn free_nodes(&self) -> u32 {
        self.free_nodes
    }

    /// Partition size.
    pub fn total_nodes(&self) -> u32 {
        self.cfg.nodes
    }

    /// Simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Loads a trace of future arrivals. Jobs with `submit <= now` arrive
    /// immediately on the next event processing. Ids are preserved if
    /// unique, otherwise reassigned.
    pub fn load_trace(&mut self, jobs: &[JobRecord]) {
        for j in jobs {
            self.insert_future(j.clone());
        }
    }

    /// Submits a job *now* (the agent-facing call): the job's submit time
    /// is overridden to the current instant. Returns the id under which the
    /// simulator tracks it.
    pub fn submit(&mut self, mut job: JobRecord) -> u64 {
        job.submit = self.now;
        self.insert_future(job)
    }

    fn insert_future(&mut self, mut job: JobRecord) -> u64 {
        let (id, submit) = prepare_admission(
            &mut job,
            self.now,
            &self.id_map,
            &mut self.next_id,
            &mut self.first_submit,
        );
        let idx = self.jobs.len();
        self.jobs.push(SimJob {
            record: job,
            status: JobStatus::Future,
        });
        self.id_map.insert(id, idx);
        self.events.push(Event {
            time: submit,
            kind: EventKind::Arrival,
            job: idx,
        });
        id
    }

    /// Observable cluster state at the current instant.
    pub fn sample(&self) -> ClusterSnapshot {
        let queued = self
            .pending
            .iter()
            .map(|&i| {
                let r = &self.jobs[i].record;
                QueuedJobView {
                    id: r.id,
                    nodes: r.nodes,
                    submit: r.submit,
                    age: self.now - r.submit,
                    timelimit: r.timelimit,
                    user: r.user,
                }
            })
            .collect();
        let running = self
            .running
            .iter()
            .map(|&i| {
                let j = &self.jobs[i];
                let start = match j.status {
                    JobStatus::Running { start } => start,
                    _ => unreachable!("running list holds only running jobs"),
                };
                RunningJobView {
                    id: j.record.id,
                    nodes: j.record.nodes,
                    start,
                    elapsed: self.now - start,
                    timelimit: j.record.timelimit,
                    user: j.record.user,
                }
            })
            .collect();
        ClusterSnapshot {
            now: self.now,
            free_nodes: self.free_nodes,
            total_nodes: self.cfg.nodes,
            queued,
            running,
        }
    }

    /// Status of a job by id.
    pub fn job_status(&self, id: u64) -> Option<JobStatus> {
        self.id_map.get(&id).map(|&i| self.jobs[i].status)
    }

    /// Advances simulated time by `dt` seconds, processing every event in
    /// the window. Non-positive `dt` is a no-op: stepping backwards (or
    /// nowhere) must not re-process events or corrupt the event order.
    pub fn step(&mut self, dt: i64) {
        if dt <= 0 {
            return;
        }
        self.run_until(self.now + dt);
    }

    /// Returns to an idle cluster at time 0 with the same configuration,
    /// dropping all loaded jobs and history.
    pub fn reset(&mut self) {
        *self = Simulator::new(self.cfg.clone());
    }

    /// Advances simulated time to `t_end`, processing every event up to and
    /// including that instant.
    pub fn run_until(&mut self, t_end: i64) {
        while let Some(t) = self.events.peek_time() {
            if t > t_end {
                break;
            }
            self.advance_clock(t);
            self.process_events_at(t);
            self.schedule_pass();
        }
        self.advance_clock(t_end);
    }

    /// Runs until no events remain (all loaded jobs completed or rejected).
    pub fn run_to_completion(&mut self) {
        while let Some(t) = self.events.peek_time() {
            self.advance_clock(t);
            self.process_events_at(t);
            self.schedule_pass();
        }
    }

    /// Whether any work remains (queued, running or future).
    pub fn is_active(&self) -> bool {
        !self.events.is_empty() || !self.pending.is_empty() || !self.running.is_empty()
    }

    /// Completed job records (start/end filled), in completion order.
    pub fn completed(&self) -> Vec<JobRecord> {
        let mut done: Vec<&SimJob> = self
            .jobs
            .iter()
            .filter(|j| matches!(j.status, JobStatus::Completed { .. }))
            .collect();
        done.sort_by_key(|j| (j.record.end, j.record.id));
        done.iter().map(|j| j.record.clone()).collect()
    }

    /// Mean queue wait of jobs that *started* within the trailing `window`
    /// seconds — the observable statistic behind the paper's `avg`
    /// heuristic baseline. `None` if nothing started in the window.
    pub fn avg_recent_wait(&self, window: i64) -> Option<f64> {
        self.recent_starts.avg(self.now, window)
    }

    /// Aggregate metrics of the run so far.
    pub fn metrics(&self) -> SimMetrics {
        let completed = self.completed();
        let span = self.now - self.first_submit.unwrap_or(0);
        SimMetrics::from_completed(
            &completed,
            self.rejected,
            self.cfg.nodes,
            self.busy_node_seconds,
            span.max(0),
        )
    }

    fn advance_clock(&mut self, t: i64) {
        if t <= self.now {
            return;
        }
        let dt = (t - self.now) as f64;
        self.busy_node_seconds += f64::from(self.cfg.nodes - self.free_nodes) * dt;
        self.now = t;
    }

    /// Fires all events at exactly time `t` (completions first — the event
    /// queue orders them ahead of arrivals).
    fn process_events_at(&mut self, t: i64) {
        while self.events.peek_time() == Some(t) {
            let ev = self.events.pop().expect("peeked");
            match ev.kind {
                EventKind::Completion => self.complete_job(ev.job),
                EventKind::Arrival => self.arrive_job(ev.job),
            }
        }
    }

    fn arrive_job(&mut self, idx: usize) {
        let job = &mut self.jobs[idx];
        debug_assert!(matches!(job.status, JobStatus::Future));
        if self.cfg.reject_oversized && job.record.nodes > self.cfg.nodes {
            job.status = JobStatus::Rejected;
            self.rejected += 1;
            return;
        }
        job.status = JobStatus::Pending;
        self.pending.push(idx);
    }

    fn complete_job(&mut self, idx: usize) {
        let now = self.now;
        let job = &mut self.jobs[idx];
        let JobStatus::Running { start } = job.status else {
            unreachable!("completion event for non-running job");
        };
        job.status = JobStatus::Completed { start, end: now };
        job.record.start = Some(start);
        job.record.end = Some(now);
        self.free_nodes += job.record.nodes;
        let consumed = f64::from(job.record.nodes) * (now - start) as f64;
        let user = job.record.user;
        self.fairshare.record(user, consumed);
        if let Some(pos) = self.running.iter().position(|&i| i == idx) {
            self.running.swap_remove(pos);
        }
    }

    fn start_job(&mut self, idx: usize) {
        let now = self.now;
        let job = &mut self.jobs[idx];
        debug_assert!(matches!(job.status, JobStatus::Pending));
        self.recent_starts.record(now, now - job.record.submit);
        job.status = JobStatus::Running { start: now };
        self.free_nodes -= job.record.nodes;
        // Jobs are killed at their wall-clock limit.
        let run = job.record.runtime.min(job.record.timelimit);
        let end = now + run;
        self.running.push(idx);
        self.events.push(Event {
            time: end,
            kind: EventKind::Completion,
            job: idx,
        });
    }

    /// One scheduling pass: priority ordering + backfill plan + starts.
    ///
    /// Only the `sched_depth` highest-priority queued jobs are examined
    /// (Slurm's `bf_max_job_test`), keeping the pass cheap even with a
    /// multi-thousand-job backlog.
    fn schedule_pass(&mut self) {
        if self.pending.is_empty() || self.free_nodes == 0 {
            return;
        }
        let capacity_ns = f64::from(self.cfg.nodes) * self.cfg.weights.fairshare_halflife as f64;
        self.fairshare
            .decay_to(self.now, self.cfg.weights.fairshare_halflife);

        let w = self.cfg.weights;
        let now = self.now;
        let total = self.cfg.nodes;

        // (−priority, submit, id, idx): ascending sort gives descending
        // priority with FIFO tie-breaks, no hashing in the hot loop.
        let order = &mut self.scratch_order;
        order.clear();
        order.reserve(self.pending.len());
        for &i in &self.pending {
            let r = &self.jobs[i].record;
            let usage = self.fairshare.normalized_usage(r.user, capacity_ns);
            let p = priority(&w, now - r.submit, r.nodes, total, usage);
            order.push((-p, r.submit, r.id, i));
        }
        let depth = self.cfg.sched_depth.max(1);
        if order.len() > depth {
            order.select_nth_unstable_by(depth - 1, |a, b| a.partial_cmp(b).unwrap());
            order.truncate(depth);
        }
        order.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());

        self.scratch_views.clear();
        self.scratch_views
            .extend(order.iter().map(|&(_, _, _, i)| PendingView {
                nodes: self.jobs[i].record.nodes,
                timelimit: self.jobs[i].record.timelimit,
            }));
        self.scratch_releases.clear();
        self.scratch_releases.extend(self.running.iter().map(|&i| {
            let j = &self.jobs[i];
            let JobStatus::Running { start } = j.status else {
                unreachable!()
            };
            // The scheduler only knows the *limit*, not the real runtime.
            (start + j.record.timelimit, j.record.nodes)
        }));

        let starts = plan_schedule(
            &self.scratch_views,
            self.free_nodes,
            self.cfg.nodes,
            self.now,
            &self.scratch_releases,
            self.cfg.backfill,
        );
        if starts.is_empty() {
            return;
        }
        let started: Vec<usize> = starts.iter().map(|&s| self.scratch_order[s].3).collect();
        for &idx in &started {
            self.start_job(idx);
        }
        self.pending
            .retain(|&i| matches!(self.jobs[i].status, JobStatus::Pending));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::HOUR;

    fn job(id: u64, submit: i64, nodes: u32, runtime: i64, limit: i64) -> JobRecord {
        JobRecord::new(id, format!("j{id}"), 1, submit, nodes, limit, runtime)
    }

    fn sim(nodes: u32) -> Simulator {
        Simulator::new(SimConfig::new(nodes))
    }

    #[test]
    fn empty_cluster_starts_job_immediately() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 100, 2, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].start, Some(100));
        assert_eq!(done[0].end, Some(100 + HOUR));
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 0, 4, HOUR, 2 * HOUR), job(2, 10, 4, HOUR, 2 * HOUR)]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done[0].start, Some(0));
        // Second job waits for the first to actually finish (1h), not its
        // 2h limit.
        assert_eq!(done[1].start, Some(HOUR));
        assert_eq!(done[1].wait(), Some(HOUR - 10));
    }

    #[test]
    fn backfill_lets_short_job_jump_ahead() {
        // 4 nodes; J1 takes 3 of them until t=2h (limit 4h → shadow at 4h).
        // J2 (4 nodes) blocks at its arrival; J3 (1 node, 30 min limit)
        // fits in the single free node and finishes before J2's shadow, so
        // EASY backfills it immediately at t=20.
        let mut s = sim(4);
        s.load_trace(&[
            job(1, 0, 3, 2 * HOUR, 4 * HOUR),
            job(2, 10, 4, HOUR, 2 * HOUR),
            job(3, 20, 1, HOUR / 2, HOUR / 2),
        ]);
        s.run_to_completion();
        let done = s.completed();
        let j3 = done.iter().find(|j| j.id == 3).unwrap();
        assert_eq!(j3.start, Some(20), "J3 backfills instantly");
        // J2 starts when J1 *actually* completes (2h), not at the 4h limit.
        let j2 = done.iter().find(|j| j.id == 2).unwrap();
        assert_eq!(j2.start, Some(2 * HOUR));
    }

    #[test]
    fn no_backfill_means_head_of_line_blocking() {
        let mut cfg = SimConfig::new(4);
        cfg.backfill = BackfillPolicy::None;
        let mut s = Simulator::new(cfg);
        // J1 fills the cluster; J2 (too big to fit beside J1) blocks J3
        // even though J3 would fit.
        s.load_trace(&[
            job(1, 0, 3, 2 * HOUR, 2 * HOUR),
            job(2, 10, 4, HOUR, HOUR),
            job(3, 20, 1, HOUR, HOUR),
        ]);
        s.run_until(HOUR);
        let snap = s.sample();
        assert_eq!(snap.running.len(), 1, "only J1 runs");
        assert_eq!(snap.queued.len(), 2, "J3 blocked behind J2");
    }

    #[test]
    fn oversized_jobs_are_rejected() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 0, 8, HOUR, HOUR)]);
        s.run_to_completion();
        assert_eq!(s.job_status(1), Some(JobStatus::Rejected));
        assert_eq!(s.metrics().rejected_jobs, 1);
        assert!(s.completed().is_empty());
    }

    #[test]
    fn submit_overrides_submit_time_to_now() {
        let mut s = sim(4);
        s.step(500);
        let id = s.submit(job(0, 42, 1, HOUR, HOUR));
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done[0].id, id);
        assert_eq!(done[0].submit, 500);
    }

    #[test]
    fn sample_reports_ages_and_elapsed() {
        let mut s = sim(2);
        s.load_trace(&[
            job(1, 0, 2, 4 * HOUR, 4 * HOUR),
            job(2, HOUR, 1, HOUR, HOUR),
        ]);
        s.run_until(2 * HOUR);
        let snap = s.sample();
        assert_eq!(snap.now, 2 * HOUR);
        assert_eq!(snap.running.len(), 1);
        assert_eq!(snap.running[0].elapsed, 2 * HOUR);
        assert_eq!(snap.queued.len(), 1);
        assert_eq!(snap.queued[0].age, HOUR);
        assert_eq!(snap.free_nodes, 0);
    }

    #[test]
    fn step_is_incremental_run_until() {
        let mut a = sim(2);
        let mut b = sim(2);
        let trace = vec![
            job(1, 0, 1, HOUR, HOUR),
            job(2, 30, 2, HOUR, 2 * HOUR),
            job(3, 60, 1, 2 * HOUR, 2 * HOUR),
        ];
        a.load_trace(&trace);
        b.load_trace(&trace);
        a.run_until(5 * HOUR);
        for _ in 0..10 {
            b.step(HOUR / 2);
        }
        assert_eq!(a.sample(), b.sample());
        assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn utilization_accounting_matches_by_hand() {
        let mut s = sim(2);
        // One 1-node job for 1h on a 2-node cluster, observed over 2h.
        s.load_trace(&[job(1, 0, 1, HOUR, HOUR)]);
        s.run_until(2 * HOUR);
        let m = s.metrics();
        // busy = 1 node × 1h = 3600 node-s; capacity = 2 × 7200.
        assert!((m.utilization - 3600.0 / 14400.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_ids_are_reassigned() {
        let mut s = sim(4);
        let a = s.submit(job(7, 0, 1, HOUR, HOUR));
        let b = s.submit(job(7, 0, 1, HOUR, HOUR));
        assert_eq!(a, 7);
        assert_ne!(b, 7);
        s.run_to_completion();
        assert_eq!(s.completed().len(), 2);
    }

    #[test]
    fn fairshare_pushes_hogs_back() {
        // User 1 monopolizes the cluster; then user 1 and user 2 submit
        // simultaneously — user 2 must start first.
        let mut s = sim(2);
        let mut hog = job(1, 0, 2, 10 * HOUR, 10 * HOUR);
        hog.user = 1;
        s.load_trace(&[hog]);
        s.run_until(10 * HOUR);
        let mut j_hog = job(2, 0, 2, HOUR, HOUR);
        j_hog.user = 1;
        let mut j_new = job(3, 0, 2, HOUR, HOUR);
        j_new.user = 2;
        s.submit(j_hog);
        s.submit(j_new);
        s.run_to_completion();
        let done = s.completed();
        let start_hog = done.iter().find(|j| j.id == 2).unwrap().start.unwrap();
        let start_new = done.iter().find(|j| j.id == 3).unwrap().start.unwrap();
        assert!(
            start_new < start_hog,
            "fresh user should preempt hog in queue order"
        );
    }

    #[test]
    fn runtime_capped_at_timelimit() {
        let mut s = sim(1);
        let mut j = job(1, 0, 1, 10 * HOUR, HOUR);
        j.runtime = 10 * HOUR; // claims 10h but limit is 1h
        s.load_trace(&[j]);
        s.run_to_completion();
        let done = s.completed();
        assert_eq!(done[0].end, Some(HOUR), "killed at the wall-clock limit");
    }

    #[test]
    fn non_positive_step_is_a_no_op() {
        let mut s = sim(2);
        s.load_trace(&[job(1, 50, 1, HOUR, HOUR)]);
        s.step(100);
        let before = s.sample();
        s.step(0);
        s.step(-3600);
        assert_eq!(s.now(), 100, "clock must not move");
        assert_eq!(s.sample(), before, "state must be untouched");
        // The event order survives: the run still completes normally.
        s.run_to_completion();
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn reset_restores_an_idle_cluster() {
        let mut s = sim(4);
        s.load_trace(&[job(1, 0, 2, HOUR, HOUR)]);
        s.run_until(30 * 60);
        assert!(s.is_active());
        s.reset();
        assert_eq!(s.now(), 0);
        assert_eq!(s.free_nodes(), 4);
        assert!(!s.is_active());
        assert!(s.completed().is_empty());
        // Fully reusable after reset.
        s.load_trace(&[job(1, 10, 1, HOUR, HOUR)]);
        s.run_to_completion();
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn is_active_tracks_outstanding_work() {
        let mut s = sim(1);
        assert!(!s.is_active());
        s.load_trace(&[job(1, 100, 1, HOUR, HOUR)]);
        assert!(s.is_active());
        s.run_to_completion();
        assert!(!s.is_active());
    }
}
