//! Shared simulator internals that must stay in lockstep between the
//! event-driven and tick-driven backends.
//!
//! Both simulators admit jobs identically (clear any recorded outcome,
//! keep the requested id when unique, otherwise assign the next free
//! one, clamp the submit instant to the present) and expose the same
//! recent-wait observable behind the paper's `avg` heuristic. The
//! backend-equivalence property test depends on these behaviors not
//! drifting apart, so they live here with one implementation each.

use std::collections::{HashMap, VecDeque};

use mirage_trace::JobRecord;

/// Prepares `job` for admission at simulated time `now`: resets its
/// outcome fields, resolves its id against `id_map`/`next_id`, tracks
/// the earliest submission in `first_submit`, and returns
/// `(id, effective_submit)`.
pub(crate) fn prepare_admission(
    job: &mut JobRecord,
    now: i64,
    id_map: &HashMap<u64, usize>,
    next_id: &mut u64,
    first_submit: &mut Option<i64>,
) -> (u64, i64) {
    job.start = None;
    job.end = None;
    if job.id == 0 || id_map.contains_key(&job.id) {
        while id_map.contains_key(next_id) {
            *next_id += 1;
        }
        job.id = *next_id;
        *next_id += 1;
    }
    *next_id = (*next_id).max(job.id + 1);
    let submit = job.submit.max(now);
    *first_submit = Some(first_submit.map_or(submit, |f| f.min(submit)));
    (job.id, submit)
}

/// Rolling `(start_time, wait)` log of dispatches — the observable
/// statistic behind the `avg` heuristic baseline (§6: submit `T_avg`
/// before the predecessor's end).
#[derive(Debug, Clone, Default)]
pub(crate) struct RecentStarts {
    log: VecDeque<(i64, i64)>,
}

impl RecentStarts {
    /// Bound on retained dispatches; old entries beyond any realistic
    /// averaging window are dropped.
    const CAP: usize = 4096;

    /// Records a dispatch at `now` of a job that waited `wait` seconds.
    ///
    /// The backing ring is reserved to its cap on first use so the hot
    /// loop never grows it — start recording is on the simulator's
    /// steady-state (allocation-free) path.
    pub(crate) fn record(&mut self, now: i64, wait: i64) {
        if self.log.capacity() <= Self::CAP {
            self.log.reserve(Self::CAP + 1 - self.log.len());
        }
        self.log.push_back((now, wait));
        if self.log.len() > Self::CAP {
            self.log.pop_front();
        }
    }

    /// Mean wait of jobs that started within the trailing `window`
    /// seconds before `now`; `None` if nothing started in the window.
    pub(crate) fn avg(&self, now: i64, window: i64) -> Option<f64> {
        let cutoff = now - window;
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for &(start, wait) in self.log.iter().rev() {
            if start < cutoff {
                break;
            }
            sum += wait as f64;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recent_starts_window_and_cap() {
        let mut rs = RecentStarts::default();
        assert_eq!(rs.avg(100, 50), None);
        rs.record(10, 100);
        rs.record(60, 200);
        rs.record(90, 600);
        // Window catches the last two only.
        assert_eq!(rs.avg(100, 50), Some(400.0));
        // Wider window catches all three.
        assert_eq!(rs.avg(100, 1000), Some(300.0));
        // The cap keeps the log bounded and retains the newest entries.
        for i in 0..(RecentStarts::CAP as i64 + 10) {
            rs.record(1000 + i, 7);
        }
        assert!(rs.log.len() <= RecentStarts::CAP);
        assert_eq!(rs.avg(1000 + RecentStarts::CAP as i64 + 9, 1), Some(7.0));
    }

    fn job(id: u64, submit: i64) -> JobRecord {
        let mut j = JobRecord::new(id, format!("j{id}"), 1, submit, 1, 100, 50);
        j.complete_at(submit + 1); // stale outcome that admission must clear
        j
    }

    #[test]
    fn unique_ids_survive_and_outcomes_clear() {
        let id_map = HashMap::new();
        let mut next_id = 1;
        let mut first = None;
        let mut j = job(7, 40);
        let (id, submit) = prepare_admission(&mut j, 10, &id_map, &mut next_id, &mut first);
        assert_eq!(id, 7);
        assert_eq!(submit, 40);
        assert_eq!(next_id, 8);
        assert_eq!(first, Some(40));
        assert!(j.start.is_none() && j.end.is_none());
    }

    #[test]
    fn collisions_and_zero_ids_are_reassigned_past_taken_slots() {
        let mut id_map = HashMap::new();
        id_map.insert(7u64, 0usize);
        id_map.insert(8u64, 1usize);
        let mut next_id = 7;
        let mut first = Some(5);
        let mut dup = job(7, 2);
        let (id, submit) = prepare_admission(&mut dup, 10, &id_map, &mut next_id, &mut first);
        assert_eq!(id, 9, "skips the taken 7 and 8");
        assert_eq!(submit, 10, "past submits clamp to now");
        assert_eq!(first, Some(5), "earlier first submit wins");
        let mut zero = job(0, 20);
        let (id2, _) = prepare_admission(&mut zero, 10, &id_map, &mut next_id, &mut first);
        assert_eq!(id2, 10);
    }
}
