//! Slurm multifactor priority (§5 of the paper; SchedMD's
//! `priority/multifactor` plugin).
//!
//! Priority is a weighted sum of normalized factors:
//!
//! * **age** — time spent pending, saturating at `age_max` (Slurm's
//!   `PriorityMaxAge`); note that, as the paper points out, the age factor
//!   of a dependent job only starts accruing once its predecessor
//!   completes — which is exactly why reactive chained submission waits so
//!   long,
//! * **job size** — larger allocations get a boost so wide jobs are not
//!   starved by a stream of single-node work,
//! * **fair-share** — users with little recent usage are favored; recent
//!   usage decays exponentially with a configurable half-life.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Weights of the multifactor priority, mirroring Slurm's
/// `PriorityWeightAge`, `PriorityWeightJobSize` and `PriorityWeightFairshare`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriorityWeights {
    /// Weight of the (saturating) queue-age factor.
    pub age: f64,
    /// Pending time at which the age factor saturates, seconds.
    pub age_max: i64,
    /// Weight of the job-size factor (`nodes / total_nodes`).
    pub size: f64,
    /// Weight of the fair-share factor.
    pub fairshare: f64,
    /// Half-life of historical usage decay, seconds.
    pub fairshare_halflife: i64,
}

impl Default for PriorityWeights {
    /// Defaults shaped like a typical TACC multifactor configuration: age
    /// dominates (FIFO-ish), fair-share corrects hogs, size gives wide jobs
    /// a fighting chance.
    fn default() -> Self {
        Self {
            age: 1000.0,
            age_max: 7 * 24 * 3600,
            size: 200.0,
            fairshare: 500.0,
            fairshare_halflife: 7 * 24 * 3600,
        }
    }
}

/// Tracks decayed per-user usage for the fair-share factor.
#[derive(Debug, Clone, Default)]
pub struct FairshareTracker {
    usage: HashMap<u32, f64>,
    last_decay: i64,
}

impl FairshareTracker {
    /// Creates a tracker with no recorded usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decays all recorded usage to instant `now` with the given half-life.
    pub fn decay_to(&mut self, now: i64, halflife: i64) {
        if now <= self.last_decay || halflife <= 0 {
            self.last_decay = self.last_decay.max(now);
            return;
        }
        let dt = (now - self.last_decay) as f64;
        let factor = 0.5f64.powf(dt / halflife as f64);
        for u in self.usage.values_mut() {
            *u *= factor;
        }
        // Drop negligible entries so long simulations don't accumulate users.
        self.usage.retain(|_, u| *u > 1e-6);
        self.last_decay = now;
    }

    /// Records `node_seconds` of consumption by `user`.
    pub fn record(&mut self, user: u32, node_seconds: f64) {
        *self.usage.entry(user).or_insert(0.0) += node_seconds;
    }

    /// Normalized usage of `user` relative to `capacity_node_seconds` (the
    /// cluster's node-seconds over one half-life). 0 = idle user.
    pub fn normalized_usage(&self, user: u32, capacity_node_seconds: f64) -> f64 {
        if capacity_node_seconds <= 0.0 {
            return 0.0;
        }
        self.usage.get(&user).copied().unwrap_or(0.0) / capacity_node_seconds
    }
}

/// Computes the multifactor priority of one pending job.
///
/// `age` is seconds pending, `nodes`/`total_nodes` give the size factor and
/// `usage_norm` is the user's normalized decayed usage (see
/// [`FairshareTracker::normalized_usage`]).
pub fn priority(
    weights: &PriorityWeights,
    age: i64,
    nodes: u32,
    total_nodes: u32,
    usage_norm: f64,
) -> f64 {
    let age_factor = (age as f64 / weights.age_max as f64).clamp(0.0, 1.0);
    let size_factor = f64::from(nodes) / f64::from(total_nodes.max(1));
    // Slurm's fair-share curve: 2^(-usage); idle users get 1.0. `exp2`
    // instead of `powf` — this runs once per pending job per scheduling
    // pass, and generic `pow` is several times slower than direct exp2.
    let fs_factor = (-usage_norm.max(0.0)).exp2();
    weights.age * age_factor + weights.size * size_factor + weights.fairshare * fs_factor
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: PriorityWeights = PriorityWeights {
        age: 1000.0,
        age_max: 1000,
        size: 100.0,
        fairshare: 500.0,
        fairshare_halflife: 1000,
    };

    #[test]
    fn age_factor_saturates() {
        let p1 = priority(&W, 500, 1, 10, 0.0);
        let p2 = priority(&W, 1000, 1, 10, 0.0);
        let p3 = priority(&W, 5000, 1, 10, 0.0);
        assert!(p2 > p1);
        assert!((p3 - p2).abs() < 1e-9, "age saturates at age_max");
    }

    #[test]
    fn bigger_jobs_get_size_boost() {
        let small = priority(&W, 0, 1, 10, 0.0);
        let big = priority(&W, 0, 8, 10, 0.0);
        assert!(big > small);
        assert!((big - small - 100.0 * 0.7).abs() < 1e-9);
    }

    #[test]
    fn heavy_users_lose_fairshare() {
        let idle = priority(&W, 0, 1, 10, 0.0);
        let hog = priority(&W, 0, 1, 10, 2.0);
        assert!(idle > hog);
        assert!((idle - hog - 500.0 * (1.0 - 0.25)).abs() < 1e-9);
    }

    #[test]
    fn usage_decays_with_halflife() {
        let mut fs = FairshareTracker::new();
        fs.record(1, 100.0);
        fs.decay_to(1000, 1000);
        assert!((fs.normalized_usage(1, 1.0) - 50.0).abs() < 1e-9);
        fs.decay_to(2000, 1000);
        assert!((fs.normalized_usage(1, 1.0) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn decay_is_lazy_and_monotone() {
        let mut fs = FairshareTracker::new();
        fs.record(1, 8.0);
        fs.decay_to(500, 1000);
        fs.decay_to(500, 1000); // idempotent at same instant
        let u = fs.normalized_usage(1, 1.0);
        assert!(u < 8.0 && u > 4.0);
        // time never goes backwards
        fs.decay_to(100, 1000);
        assert!((fs.normalized_usage(1, 1.0) - u).abs() < 1e-12);
    }

    #[test]
    fn unknown_user_has_zero_usage() {
        let fs = FairshareTracker::new();
        assert_eq!(fs.normalized_usage(42, 100.0), 0.0);
    }

    #[test]
    fn negligible_usage_is_dropped() {
        let mut fs = FairshareTracker::new();
        fs.record(1, 1e-3);
        fs.decay_to(100_000, 100); // 1000 half-lives
        assert_eq!(fs.normalized_usage(1, 1.0), 0.0);
    }
}
