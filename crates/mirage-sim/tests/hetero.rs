//! Property-based tests for the heterogeneity subsystem.
//!
//! Two guarantees matter for the hetero evaluation lane:
//!
//! 1. **Identity with heterogeneity off** — both the disabled
//!    [`HeteroModel::none`] and a *degenerate* enabled model (one
//!    baseline-speed pool, zero contention) leave every observable output
//!    byte-for-byte equal to the pre-hetero homogeneous simulator, on both
//!    backends. This is the same discipline `FaultModel::none()` pins.
//! 2. **Replay determinism** — the same hetero seed produces bit-identical
//!    placements, slowdowns and pool-local eviction schedules run after
//!    run (including across `reset()`), with and without faults layered on
//!    top, so RL-vs-baseline comparisons are controlled experiments.

use mirage_sim::{
    ClusterBackend, FaultModel, HeteroModel, HeteroStats, NodePool, ReferenceConfig,
    ReferenceSimulator, SimConfig, SimMetrics, Simulator,
};
use mirage_trace::{JobRecord, PoolRequest};
use proptest::prelude::*;

fn trace_from(seed_jobs: &[(i64, u32, i64, u8)]) -> Vec<JobRecord> {
    seed_jobs
        .iter()
        .enumerate()
        .map(|(i, &(submit, n, runtime, style))| {
            // Style exercises every request flavor; kinds match the
            // two-pool scenarios below ("a100"/"v100") plus one that no
            // pool carries, which must still place (and may go off-type).
            let pool = match style % 4 {
                0 => PoolRequest::Anywhere,
                1 => PoolRequest::Prefer("a100".into()),
                2 => PoolRequest::Demand("a100".into()),
                _ => PoolRequest::Demand("v100".into()),
            };
            JobRecord::new(
                i as u64 + 1,
                format!("h{i}"),
                (i % 4) as u32,
                submit,
                n,
                runtime * 2,
                runtime,
            )
            .with_pool(pool)
        })
        .collect()
}

/// Everything a run exposes, for whole-run equality checks.
fn observe<B: ClusterBackend>(backend: &mut B) -> (Vec<JobRecord>, SimMetrics, HeteroStats) {
    backend.run_to_completion();
    (
        backend.completed(),
        backend.metrics(),
        backend.hetero_stats(),
    )
}

/// One baseline-speed pool covering the partition, contention off: enabled
/// machinery, but mathematically an identity.
fn degenerate(nodes: u32) -> HeteroModel {
    HeteroModel::with_pools(vec![NodePool::new("v100", nodes, 1.0)], 0.0, 3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single-pool, contention-off hetero config is byte-identical to
    /// the pre-hetero homogeneous path on both backends: same snapshots
    /// mid-run, same completions (order included), same metrics.
    #[test]
    fn degenerate_pool_model_changes_nothing(
        seed_jobs in prop::collection::vec(
            (0i64..80_000, 1u32..=4, 600i64..15_000, 0u8..4), 1..30),
        probe in 0i64..100_000,
    ) {
        let trace = trace_from(&seed_jobs);

        let plain_cfg = SimConfig::new(8);
        let mut one_pool_cfg = plain_cfg.clone();
        one_pool_cfg.hetero = degenerate(8);
        one_pool_cfg.validate().unwrap();
        let mut plain = Simulator::new(plain_cfg);
        let mut pooled = Simulator::new(one_pool_cfg);
        plain.load_trace(&trace);
        pooled.load_trace(&trace);
        plain.run_until(probe);
        pooled.run_until(probe);
        let mut psnap = pooled.sample();
        prop_assert_eq!(psnap.pool_total.clone(), vec![8], "pool fields are reported");
        // Blank the pool-only fields, then demand byte-equality on the rest.
        psnap.pool_free.clear();
        psnap.pool_total.clear();
        prop_assert_eq!(plain.sample(), psnap, "mid-run snapshot");
        let (pc, pm, _) = observe(&mut plain);
        let (hc, hm, hstats) = observe(&mut pooled);
        prop_assert_eq!((pc, pm), (hc, hm), "event-driven identity");
        prop_assert_eq!(hstats.slowdowns, 0, "identity model never rescales");
        prop_assert_eq!(hstats.span_placements, 0);

        let rplain_cfg = ReferenceConfig::new(8);
        let mut rpool_cfg = rplain_cfg.clone();
        rpool_cfg.hetero = degenerate(8);
        rpool_cfg.validate().unwrap();
        let mut rplain = ReferenceSimulator::new(rplain_cfg);
        let mut rpooled = ReferenceSimulator::new(rpool_cfg);
        rplain.load_trace(&trace);
        rpooled.load_trace(&trace);
        rplain.run_until(probe);
        rpooled.run_until(probe);
        let mut rsnap = rpooled.sample();
        rsnap.pool_free.clear();
        rsnap.pool_total.clear();
        prop_assert_eq!(rplain.sample(), rsnap, "mid-run snapshot");
        let (pc, pm, _) = observe(&mut rplain);
        let (hc, hm, _) = observe(&mut rpooled);
        prop_assert_eq!((pc, pm), (hc, hm), "tick-driven identity");
    }

    /// Same hetero seed → bit-identical placement schedules: across two
    /// fresh simulators, and across `reset()` replay, on both backends,
    /// with node-crash faults layered on top of the pools.
    #[test]
    fn identical_seeds_give_bit_identical_hetero_schedules(
        hetero_seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        seed_jobs in prop::collection::vec(
            (0i64..100_000, 1u32..=4, 1800i64..20_000, 0u8..4), 1..25),
    ) {
        let trace = trace_from(&seed_jobs);

        let mut cfg = SimConfig::new(8);
        cfg.hetero = HeteroModel::balanced(8, hetero_seed);
        cfg.faults = FaultModel::severe(fault_seed);
        cfg.validate().unwrap();
        let mut a = Simulator::new(cfg.clone());
        let mut b = Simulator::new(cfg);
        a.load_trace(&trace);
        b.load_trace(&trace);
        let run_a = observe(&mut a);
        prop_assert_eq!(&run_a, &observe(&mut b), "fresh event-driven twins");
        a.reset_with(&trace);
        prop_assert_eq!(&run_a, &observe(&mut a), "event-driven reset replay");

        let mut rcfg = ReferenceConfig::new(8);
        rcfg.hetero = HeteroModel::balanced(8, hetero_seed);
        rcfg.faults = FaultModel::severe(fault_seed);
        rcfg.validate().unwrap();
        let mut ra = ReferenceSimulator::new(rcfg.clone());
        let mut rb = ReferenceSimulator::new(rcfg);
        ra.load_trace(&trace);
        rb.load_trace(&trace);
        let run_ra = observe(&mut ra);
        prop_assert_eq!(&run_ra, &observe(&mut rb), "fresh tick-driven twins");
        ra.reset_with(&trace);
        prop_assert_eq!(&run_ra, &observe(&mut ra), "tick-driven reset replay");
    }

    /// Pool accounting is conserved under contended multi-pool scenarios:
    /// every job completes or terminates, pools drain back to their
    /// totals, and runtimes respect the slowdown bounds.
    #[test]
    fn pools_conserve_nodes_and_jobs(
        hetero_seed in 0u64..1_000_000,
        seed_jobs in prop::collection::vec(
            (0i64..100_000, 1u32..=4, 1800i64..20_000, 0u8..4), 1..25),
    ) {
        let trace = trace_from(&seed_jobs);
        let mut cfg = SimConfig::new(8);
        cfg.hetero = HeteroModel::scarce(8, hetero_seed);
        cfg.validate().unwrap();
        let mut sim = Simulator::new(cfg);
        sim.load_trace(&trace);
        sim.run_to_completion();
        let m = sim.metrics();
        prop_assert_eq!(
            sim.completed().len() + m.failed_jobs + m.rejected_jobs,
            trace.len(),
            "complete + terminal-fail + rejected must cover the trace"
        );
        prop_assert_eq!(sim.pool_free(), sim.pool_total(), "pools drain to full");
        prop_assert_eq!(sim.contended_running(), 0);
        let stats = sim.hetero_stats();
        prop_assert_eq!(stats.placements as usize, sim.completed().len());
        prop_assert!(stats.span_placements <= stats.placements);
        // Completed jobs respect causality; slowdowns stay within the
        // worst case (`(1 + contention) / slowest throughput`, capped by
        // the time limit).
        for j in &sim.completed() {
            let (start, end) = (j.start.unwrap(), j.end.unwrap());
            prop_assert!(start >= j.submit);
            let max_scaled = ((j.runtime as f64) * 2.0 / 0.6).ceil() as i64 + 1;
            prop_assert!(end - start > 0 && end - start <= max_scaled.min(j.timelimit));
        }
    }
}
