//! Property-based tests for the scheduling core and the simulator.

use mirage_sim::{
    plan_schedule, plan_schedule_into, BackfillPolicy, ClusterBackend, ClusterSnapshot,
    PendingView, PlanScratch, ReferenceConfig, ReferenceSimulator, SimConfig, Simulator,
};
use mirage_trace::JobRecord;
use proptest::prelude::*;

/// Arbitrary pending queue (already in priority order by construction).
fn pending_strategy() -> impl Strategy<Value = Vec<PendingView>> {
    prop::collection::vec(
        (1u32..=16, 60i64..100_000).prop_map(|(nodes, timelimit)| PendingView { nodes, timelimit }),
        0..20,
    )
}

/// Arbitrary running set: (release time, nodes).
fn running_strategy() -> impl Strategy<Value = Vec<(i64, u32)>> {
    prop::collection::vec((1i64..50_000, 1u32..=8), 0..12)
}

proptest! {
    /// Started jobs never exceed the free nodes available.
    #[test]
    fn plan_never_overcommits(
        pending in pending_strategy(),
        running in running_strategy(),
        free in 0u32..=16,
    ) {
        let total = 16u32;
        let free = free.min(total);
        for policy in [BackfillPolicy::None, BackfillPolicy::Easy { reserve_depth: 1 },
                       BackfillPolicy::Easy { reserve_depth: 4 }] {
            let starts = plan_schedule(&pending, free, total, 0, &running, policy);
            let used: u32 = starts.iter().map(|&i| pending[i].nodes).sum();
            prop_assert!(used <= free, "{policy:?} used {used} of {free}");
            // No index repeats, all indices valid.
            let mut seen = std::collections::HashSet::new();
            for &s in &starts {
                prop_assert!(s < pending.len());
                prop_assert!(seen.insert(s), "duplicate start {s}");
            }
        }
    }

    /// Without backfill the plan is a strict priority prefix.
    #[test]
    fn no_backfill_is_a_prefix(
        pending in pending_strategy(),
        free in 0u32..=16,
    ) {
        let starts = plan_schedule(&pending, free, 16, 0, &[], BackfillPolicy::None);
        for (k, &s) in starts.iter().enumerate() {
            prop_assert_eq!(s, k, "plan must start jobs in strict priority order");
        }
    }

    /// EASY starts a superset of the no-backfill plan (backfill only adds).
    #[test]
    fn easy_only_adds_jobs(
        pending in pending_strategy(),
        running in running_strategy(),
        free in 0u32..=16,
    ) {
        let plain = plan_schedule(&pending, free, 16, 0, &running, BackfillPolicy::None);
        let easy = plan_schedule(&pending, free, 16, 0, &running,
                                 BackfillPolicy::Easy { reserve_depth: 1 });
        for s in &plain {
            prop_assert!(easy.contains(s), "EASY dropped priority-started job {s}");
        }
        prop_assert!(easy.len() >= plain.len());
    }

    /// Full simulation conserves jobs and never exceeds capacity.
    #[test]
    fn simulation_conserves_jobs(
        seed_jobs in prop::collection::vec(
            (0i64..200_000, 1u32..=6, 60i64..20_000), 1..40),
    ) {
        let nodes = 8u32;
        let trace: Vec<JobRecord> = seed_jobs
            .iter()
            .enumerate()
            .map(|(i, &(submit, n, runtime))| {
                JobRecord::new(i as u64 + 1, format!("p{i}"), (i % 4) as u32,
                               submit, n, runtime * 2, runtime)
            })
            .collect();
        let mut sim = Simulator::new(SimConfig::new(nodes));
        sim.load_trace(&trace);
        sim.run_to_completion();
        let m = sim.metrics();
        let completed = sim.completed();
        prop_assert_eq!(completed.len() + m.rejected_jobs, trace.len());
        prop_assert!(m.utilization <= 1.0 + 1e-9);
        // Every completed job respects causality and its limit.
        for j in &completed {
            let start = j.start.unwrap();
            let end = j.end.unwrap();
            prop_assert!(start >= j.submit);
            prop_assert!(end - start <= j.timelimit);
            prop_assert!(end - start > 0);
        }
    }

    /// Backend equivalence: driven through the shared `ClusterBackend`
    /// trait on the same synthetic trace, the event-driven and the
    /// tick-driven simulators complete the same job set, and their
    /// makespans agree within the reference scheduler's cadence per job
    /// (tick alignment can delay each start by at most one backfill
    /// interval, and delays can chain through the queue).
    #[test]
    fn fast_and_reference_backends_agree_through_the_trait(
        seed_jobs in prop::collection::vec(
            (0i64..150_000, 1u32..=4, 1800i64..20_000), 1..25),
    ) {
        let nodes = 6u32;
        let trace: Vec<JobRecord> = seed_jobs
            .iter()
            .enumerate()
            .map(|(i, &(submit, n, runtime))| {
                JobRecord::new(i as u64 + 1, format!("e{i}"), (i % 3) as u32,
                               submit, n, runtime * 2, runtime)
            })
            .collect();

        fn drive<B: ClusterBackend>(backend: &mut B, trace: &[JobRecord]) -> Vec<JobRecord> {
            backend.reset_with(trace);
            backend.run_to_completion();
            backend.completed()
        }

        let reference_cfg = ReferenceConfig::new(nodes);
        let fast_done = drive(&mut Simulator::new(SimConfig::new(nodes)), &trace);
        let ref_done = drive(&mut ReferenceSimulator::new(reference_cfg.clone()), &trace);

        // Same job set completes on both backends.
        prop_assert_eq!(fast_done.len(), trace.len());
        let mut fast_ids: Vec<u64> = fast_done.iter().map(|j| j.id).collect();
        let mut ref_ids: Vec<u64> = ref_done.iter().map(|j| j.id).collect();
        fast_ids.sort_unstable();
        ref_ids.sort_unstable();
        prop_assert_eq!(fast_ids, ref_ids);

        // Makespans agree within the accumulated tick cadence.
        let makespan = |jobs: &[JobRecord]| {
            jobs.iter().filter_map(|j| j.end).max().unwrap_or(0)
        };
        let cadence = reference_cfg
            .backfill_interval
            .max(reference_cfg.sched_interval)
            .max(reference_cfg.tick);
        let budget = cadence * trace.len() as i64;
        let diff = (makespan(&fast_done) - makespan(&ref_done)).abs();
        prop_assert!(
            diff <= budget,
            "makespan diff {diff}s exceeds tick budget {budget}s"
        );
        // Starts never precede submissions on either backend.
        for j in fast_done.iter().chain(&ref_done) {
            prop_assert!(j.start.unwrap() >= j.submit);
        }
    }

    /// `sample_into` on a reused (dirty) buffer equals a fresh `sample()`
    /// at every probed instant mid-episode, on both backends.
    #[test]
    fn sample_into_buffer_reuse_matches_fresh_sample(
        seed_jobs in prop::collection::vec(
            (0i64..60_000, 1u32..=6, 60i64..12_000), 1..30),
        probes in prop::collection::vec(0i64..90_000, 1..8),
    ) {
        let nodes = 8u32;
        let trace: Vec<JobRecord> = seed_jobs
            .iter()
            .enumerate()
            .map(|(i, &(submit, n, runtime))| {
                JobRecord::new(i as u64 + 1, format!("s{i}"), (i % 3) as u32,
                               submit, n, runtime * 2, runtime)
            })
            .collect();
        let mut fast = Simulator::new(SimConfig::new(nodes));
        fast.load_trace(&trace);
        let mut tick = ReferenceSimulator::new(ReferenceConfig::new(nodes));
        tick.load_trace(&trace);
        // One dirty buffer reused across every probe and both backends.
        let mut buf = ClusterSnapshot::default();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for t in sorted {
            fast.run_until(t);
            fast.sample_into(&mut buf);
            prop_assert_eq!(&buf, &fast.sample(), "fast backend at t={}", t);
            tick.run_until(t);
            tick.sample_into(&mut buf);
            prop_assert_eq!(&buf, &tick.sample(), "tick backend at t={}", t);
        }
    }

    /// The scratch-based plan equals the allocating plan across reuse.
    #[test]
    fn plan_schedule_into_matches_allocating_plan(
        plans in prop::collection::vec(
            (pending_strategy(), running_strategy(), 0u32..=16), 1..6),
    ) {
        // One scratch + starts buffer reused across differently-shaped
        // plans: stale working state must never leak between calls.
        let mut scratch = PlanScratch::default();
        let mut starts = Vec::new();
        for (pending, running, free) in &plans {
            for policy in [BackfillPolicy::None, BackfillPolicy::Easy { reserve_depth: 1 },
                           BackfillPolicy::Easy { reserve_depth: 3 }] {
                let expected = plan_schedule(pending, *free, 16, 0, running, policy);
                plan_schedule_into(pending, *free, 16, 0, running, policy,
                                   &mut scratch, &mut starts);
                prop_assert_eq!(&starts, &expected, "{:?}", policy);
            }
        }
    }

    /// At every instant the simulator can be observed, allocation is sane.
    #[test]
    fn snapshots_never_over_allocate(
        seed_jobs in prop::collection::vec(
            (0i64..50_000, 1u32..=6, 60i64..10_000), 1..30),
        probes in prop::collection::vec(0i64..80_000, 1..8),
    ) {
        let nodes = 8u32;
        let trace: Vec<JobRecord> = seed_jobs
            .iter()
            .enumerate()
            .map(|(i, &(submit, n, runtime))| {
                JobRecord::new(i as u64 + 1, format!("p{i}"), 0, submit, n, runtime, runtime)
            })
            .collect();
        let mut sim = Simulator::new(SimConfig::new(nodes));
        sim.load_trace(&trace);
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for t in sorted {
            sim.run_until(t);
            let snap = sim.sample();
            let running_nodes: u32 = snap.running.iter().map(|r| r.nodes).sum();
            prop_assert_eq!(running_nodes + snap.free_nodes, nodes);
            prop_assert!(snap.utilization() <= 1.0 + 1e-9);
        }
    }
}
