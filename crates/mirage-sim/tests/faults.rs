//! Property-based tests for the fault-injection subsystem.
//!
//! Two guarantees matter for the chaos evaluation lane:
//!
//! 1. **Replay determinism** — the same fault seed produces bit-identical
//!    eviction/retry schedules run after run (including across `reset()`),
//!    on both the event-driven and the tick-driven backend. This is what
//!    makes the RL-vs-heuristic chaos comparison a controlled experiment.
//! 2. **Identity with faults off** — [`FaultModel::none`] leaves every
//!    observable output byte-for-byte equal to a config that predates the
//!    fault subsystem, so all existing identity pins hold unchanged.

use mirage_sim::{
    ClusterBackend, FaultModel, FaultStats, ReferenceConfig, ReferenceSimulator, RetryPolicy,
    SimConfig, SimMetrics, Simulator,
};
use mirage_trace::JobRecord;
use proptest::prelude::*;

fn trace_from(seed_jobs: &[(i64, u32, i64)]) -> Vec<JobRecord> {
    seed_jobs
        .iter()
        .enumerate()
        .map(|(i, &(submit, n, runtime))| {
            JobRecord::new(
                i as u64 + 1,
                format!("f{i}"),
                (i % 4) as u32,
                submit,
                n,
                runtime * 2,
                runtime,
            )
        })
        .collect()
}

/// Everything a run exposes, for whole-run equality checks.
fn observe<B: ClusterBackend>(backend: &mut B) -> (Vec<JobRecord>, SimMetrics, FaultStats) {
    backend.run_to_completion();
    (
        backend.completed(),
        backend.metrics(),
        backend.fault_stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same severe fault seed → bit-identical schedules: across two fresh
    /// simulators, and across `reset()` replay of one, on both backends.
    #[test]
    fn identical_seeds_give_bit_identical_fault_schedules(
        fault_seed in 0u64..1_000_000,
        seed_jobs in prop::collection::vec(
            (0i64..100_000, 1u32..=4, 1800i64..20_000), 1..25),
    ) {
        let trace = trace_from(&seed_jobs);

        let mut cfg = SimConfig::new(6);
        cfg.faults = FaultModel::severe(fault_seed);
        cfg.retry = RetryPolicy::default();
        let mut a = Simulator::new(cfg.clone());
        let mut b = Simulator::new(cfg);
        a.load_trace(&trace);
        b.load_trace(&trace);
        let run_a = observe(&mut a);
        prop_assert_eq!(&run_a, &observe(&mut b), "fresh event-driven twins");
        a.reset_with(&trace);
        prop_assert_eq!(&run_a, &observe(&mut a), "event-driven reset replay");

        let mut rcfg = ReferenceConfig::new(6);
        rcfg.faults = FaultModel::severe(fault_seed);
        rcfg.retry = RetryPolicy::default();
        let mut ra = ReferenceSimulator::new(rcfg.clone());
        let mut rb = ReferenceSimulator::new(rcfg);
        ra.load_trace(&trace);
        rb.load_trace(&trace);
        let run_ra = observe(&mut ra);
        prop_assert_eq!(&run_ra, &observe(&mut rb), "fresh tick-driven twins");
        ra.reset_with(&trace);
        prop_assert_eq!(&run_ra, &observe(&mut ra), "tick-driven reset replay");
    }

    /// `FaultModel::none()` is the identity: every observable output —
    /// completions (order included), metrics, snapshots, fault surface —
    /// is byte-for-byte what a fault-free config produces.
    #[test]
    fn none_model_changes_nothing(
        seed_jobs in prop::collection::vec(
            (0i64..80_000, 1u32..=4, 600i64..15_000), 1..30),
        probe in 0i64..100_000,
    ) {
        let trace = trace_from(&seed_jobs);

        let plain_cfg = SimConfig::new(8);
        let mut none_cfg = plain_cfg.clone();
        none_cfg.faults = FaultModel::none();
        none_cfg.retry = RetryPolicy::default();
        let mut plain = Simulator::new(plain_cfg);
        let mut none = Simulator::new(none_cfg);
        plain.load_trace(&trace);
        none.load_trace(&trace);
        plain.run_until(probe);
        none.run_until(probe);
        prop_assert_eq!(plain.sample(), none.sample(), "mid-run snapshot");
        prop_assert_eq!(observe(&mut plain), observe(&mut none), "event-driven");
        prop_assert_eq!(none.fault_stats(), FaultStats::default());

        let rplain_cfg = ReferenceConfig::new(8);
        let mut rnone_cfg = rplain_cfg.clone();
        rnone_cfg.faults = FaultModel::none();
        rnone_cfg.retry = RetryPolicy::default();
        let mut rplain = ReferenceSimulator::new(rplain_cfg);
        let mut rnone = ReferenceSimulator::new(rnone_cfg);
        rplain.load_trace(&trace);
        rnone.load_trace(&trace);
        rplain.run_until(probe);
        rnone.run_until(probe);
        prop_assert_eq!(rplain.sample(), rnone.sample(), "mid-run snapshot");
        prop_assert_eq!(observe(&mut rplain), observe(&mut rnone), "tick-driven");
    }

    /// Jobs are conserved under severe chaos: every trace job either
    /// completes, fails terminally, or was rejected — nothing vanishes,
    /// and retry bookkeeping stays consistent.
    #[test]
    fn chaos_conserves_jobs_and_retry_accounting(
        fault_seed in 0u64..1_000_000,
        seed_jobs in prop::collection::vec(
            (0i64..100_000, 1u32..=4, 1800i64..20_000), 1..25),
    ) {
        let trace = trace_from(&seed_jobs);
        let mut cfg = SimConfig::new(6);
        cfg.faults = FaultModel::severe(fault_seed);
        cfg.retry = RetryPolicy::default();
        let mut sim = Simulator::new(cfg);
        sim.load_trace(&trace);
        sim.run_to_completion();
        let m = sim.metrics();
        let stats = sim.fault_stats();
        prop_assert_eq!(
            sim.completed().len() + m.failed_jobs + m.rejected_jobs,
            trace.len(),
            "complete + terminal-fail + rejected must cover the trace"
        );
        prop_assert_eq!(m.failed_jobs as u64, stats.failed_jobs);
        prop_assert!(stats.retries <= stats.evictions, "every retry is an eviction");
        prop_assert!(stats.job_failures <= stats.evictions);
        prop_assert!(
            stats.retry_successes as usize <= sim.completed().len(),
            "retry successes are completions"
        );
        // Completed jobs still respect causality and their limits.
        for j in &sim.completed() {
            let (start, end) = (j.start.unwrap(), j.end.unwrap());
            prop_assert!(start >= j.submit);
            prop_assert!(end - start > 0 && end - start <= j.timelimit);
        }
    }
}
