//! Cluster profiles.
//!
//! One profile per production cluster studied in the paper (§3, Table 1),
//! carrying both the hard facts the paper publishes (node counts, trace
//! span, job volume) and the workload-shape knobs the synthetic generator
//! needs (size mix, runtime scale, burstiness, short-job spike).

use serde::{Deserialize, Serialize};

use crate::time::HOUR;

/// One typed node pool of a heterogeneous partition, expressed as a
/// fraction of the cluster so the same spec scales with `nodes`.
///
/// `throughput` is the relative speed of the node type: 1.0 is the
/// profile's baseline, 1.6 finishes the same job in `1/1.6` of the time,
/// 0.6 stretches it. An empty pool list on a profile means the classic
/// homogeneous partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Pool kind tag jobs refer to (e.g. `"a100"`).
    pub kind: String,
    /// Fraction of the partition's nodes in this pool.
    pub fraction: f64,
    /// Relative per-node throughput of this type (baseline = 1.0).
    pub throughput: f64,
}

impl PoolSpec {
    /// Creates a pool spec.
    pub fn new(kind: impl Into<String>, fraction: f64, throughput: f64) -> Self {
        Self {
            kind: kind.into(),
            fraction,
            throughput,
        }
    }
}

/// Static description of a GPU cluster and its workload character.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    /// Display name (`"V100"`, `"RTX"`, `"A100"`).
    pub name: String,
    /// Compute nodes in the production partition.
    pub nodes: u32,
    /// GPUs per node (4 / 4 / 3 on the three clusters).
    pub gpus_per_node: u32,
    /// Trace length in 30-day months.
    pub trace_months: u32,
    /// Mean submitted jobs per month (paper Fig 2: 2 955 / 8 378 / 4 377).
    pub jobs_per_month: f64,
    /// Month-to-month variability of the job volume (coefficient of
    /// variation of the monthly count).
    pub monthly_cv: f64,
    /// Mean requested nodes per job (paper §3.1: 2.5 / 1.3 / 1.6).
    pub mean_nodes_per_job: f64,
    /// Fraction of jobs that run < 30 s (the RTX trace has a large spike:
    /// 96 780 of 375 095 original jobs).
    pub short_job_fraction: f64,
    /// Median runtime of "real" (non-short) single-node jobs, seconds.
    pub median_runtime: i64,
    /// Wall-clock limit ceiling enforced by the site (48 h on the TACC
    /// clusters studied).
    pub max_timelimit: i64,
    /// Demand-to-capacity pressure; 1.0 ≈ offered load equals capacity.
    /// Drives how congested (Fig 1 / Fig 4) the synthetic cluster gets.
    pub load_intensity: f64,
    /// Strength of bursty arrival episodes (0 = pure Poisson).
    pub burstiness: f64,
    /// Fraction of logical submissions that are chained sub-job sequences
    /// (checkpoint–restart chains recorded as separate accounting rows).
    /// Calibrated so original/filtered matches Table 1 (≈2.9/2.1/2.0 on
    /// V100/RTX/A100).
    pub chain_fraction: f64,
    /// Mean chain length (sub-jobs per chain).
    pub chain_len_mean: f64,
    /// Typed node pools of a heterogeneous partition. Empty (the default,
    /// and the value on every paper preset) means homogeneous: the
    /// generator emits no pool requests and simulators keep the single
    /// free-node counter.
    #[serde(default)]
    pub pools: Vec<PoolSpec>,
}

impl ClusterProfile {
    /// TACC Longhorn: 88 nodes × 4 V100, 21-month trace, heaviest queueing
    /// (30–41 % of jobs waiting > 24 h in peak months).
    pub fn v100() -> Self {
        Self {
            name: "V100".into(),
            nodes: 88,
            gpus_per_node: 4,
            trace_months: 21,
            jobs_per_month: 2955.0,
            monthly_cv: 0.44,
            mean_nodes_per_job: 2.5,
            short_job_fraction: 0.05,
            median_runtime: 3 * HOUR,
            max_timelimit: 48 * HOUR,
            load_intensity: 0.91,
            burstiness: 0.5,
            chain_fraction: 0.148,
            chain_len_mean: 14.0,
            pools: Vec::new(),
        }
    }

    /// TACC Frontera RTX partition: 84 nodes × 4 RTX 5000, 20-month trace,
    /// many sub-30 s "noisy" jobs, moderate queueing (12–24 % > 24 h).
    pub fn rtx() -> Self {
        Self {
            name: "RTX".into(),
            nodes: 84,
            gpus_per_node: 4,
            trace_months: 20,
            jobs_per_month: 8378.0,
            monthly_cv: 0.8,
            mean_nodes_per_job: 1.3,
            short_job_fraction: 0.26,
            median_runtime: HOUR,
            max_timelimit: 48 * HOUR,
            load_intensity: 0.84,
            burstiness: 0.7,
            chain_fraction: 0.088,
            chain_len_mean: 14.0,
            pools: Vec::new(),
        }
    }

    /// TACC Lonestar6 A100 partition: 76 nodes × 3 A100, 5-month trace,
    /// light queueing (92–98 % of jobs wait < 12 h) and a clean job mix.
    pub fn a100() -> Self {
        Self {
            name: "A100".into(),
            nodes: 76,
            gpus_per_node: 3,
            trace_months: 5,
            jobs_per_month: 4377.0,
            monthly_cv: 0.3,
            mean_nodes_per_job: 1.6,
            short_job_fraction: 0.04,
            median_runtime: 2 * HOUR,
            max_timelimit: 48 * HOUR,
            load_intensity: 0.91,
            burstiness: 0.45,
            chain_fraction: 0.077,
            chain_len_mean: 14.0,
            pools: Vec::new(),
        }
    }

    /// All three paper clusters, in the order they appear in every figure.
    pub fn all() -> Vec<Self> {
        vec![Self::v100(), Self::rtx(), Self::a100()]
    }

    /// Returns a proportionally shrunk profile for fast tests and CI: node
    /// count, job volume and trace length are scaled by `factor` (clamped to
    /// at least 1 node / 1 month), workload shape is preserved.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut p = self.clone();
        p.nodes = ((self.nodes as f64 * factor).round() as u32).max(1);
        p.jobs_per_month = (self.jobs_per_month * factor).max(1.0);
        p.trace_months = ((self.trace_months as f64 * factor).round() as u32).max(1);
        p
    }

    /// Total GPU count of the partition.
    pub fn total_gpus(&self) -> u32 {
        self.nodes * self.gpus_per_node
    }

    /// Attaches typed node pools (builder style).
    pub fn with_pools(mut self, pools: Vec<PoolSpec>) -> Self {
        self.pools = pools;
        self
    }

    /// Canonical two-tier split: a fast A100 quarter and a V100 balance.
    pub fn pools_a100_v100() -> Vec<PoolSpec> {
        vec![
            PoolSpec::new("a100", 0.25, 1.6),
            PoolSpec::new("v100", 0.75, 1.0),
        ]
    }

    /// Canonical three-tier split: scarce fast A100s, a V100 middle and a
    /// slow T4 tail.
    pub fn pools_a100_v100_t4() -> Vec<PoolSpec> {
        vec![
            PoolSpec::new("a100", 0.15, 2.0),
            PoolSpec::new("v100", 0.50, 1.0),
            PoolSpec::new("t4", 0.35, 0.6),
        ]
    }

    /// Splits `nodes` across `pools` by fraction, deterministically.
    ///
    /// Every pool gets at least one node (so pool kinds stay addressable on
    /// shrunk test clusters), the last pool absorbs rounding remainder, and
    /// the counts always sum to `nodes`. Callers need `nodes >=
    /// pools.len()`; profile validation downstream rejects zero-node pools.
    pub fn pool_nodes(&self) -> Vec<u32> {
        let n = self.pools.len();
        if n == 0 {
            return Vec::new();
        }
        let total: f64 = self.pools.iter().map(|p| p.fraction.max(0.0)).sum();
        let total = if total > 0.0 { total } else { 1.0 };
        let mut counts = vec![0u32; n];
        let mut remaining = self.nodes;
        for (i, count) in counts.iter_mut().enumerate().take(n - 1) {
            let later = (n - 1 - i) as u32;
            let want =
                ((self.pools[i].fraction.max(0.0) / total) * f64::from(self.nodes)).round() as u32;
            let c = want
                .clamp(1, remaining.saturating_sub(later).max(1))
                .min(remaining);
            *count = c;
            remaining -= c;
        }
        counts[n - 1] = remaining;
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let v = ClusterProfile::v100();
        let r = ClusterProfile::rtx();
        let a = ClusterProfile::a100();
        assert_eq!((v.nodes, v.gpus_per_node), (88, 4));
        assert_eq!((r.nodes, r.gpus_per_node), (84, 4));
        assert_eq!((a.nodes, a.gpus_per_node), (76, 3));
        assert_eq!(v.total_gpus(), 352);
        assert_eq!(a.total_gpus(), 228);
    }

    #[test]
    fn trace_spans_match_paper() {
        assert_eq!(ClusterProfile::v100().trace_months, 21);
        assert_eq!(ClusterProfile::rtx().trace_months, 20);
        assert_eq!(ClusterProfile::a100().trace_months, 5);
    }

    #[test]
    fn scaling_preserves_shape_and_clamps() {
        let p = ClusterProfile::v100().scaled(0.25);
        assert_eq!(p.nodes, 22);
        assert_eq!(p.trace_months, 5);
        assert!((p.mean_nodes_per_job - 2.5).abs() < f64::EPSILON);
        let tiny = ClusterProfile::a100().scaled(0.001);
        assert_eq!(tiny.nodes, 1);
        assert_eq!(tiny.trace_months, 1);
    }

    #[test]
    fn presets_are_homogeneous_and_pool_splits_are_exact() {
        assert!(ClusterProfile::v100().pools.is_empty());
        assert!(ClusterProfile::v100().pool_nodes().is_empty());

        let p = ClusterProfile::v100().with_pools(ClusterProfile::pools_a100_v100());
        let counts = p.pool_nodes();
        assert_eq!(counts.iter().sum::<u32>(), p.nodes);
        assert_eq!(counts, vec![22, 66]);

        let tiny = ClusterProfile::a100()
            .scaled(0.05)
            .with_pools(ClusterProfile::pools_a100_v100_t4());
        let counts = tiny.pool_nodes();
        assert_eq!(counts.iter().sum::<u32>(), tiny.nodes);
        assert!(counts.iter().all(|&c| c >= 1), "each pool keeps a node");
    }

    #[test]
    fn all_lists_three_clusters_in_figure_order() {
        let names: Vec<_> = ClusterProfile::all()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["V100", "RTX", "A100"]);
    }
}
