//! Service traffic models: request rates over time and the node counts
//! needed to serve them.
//!
//! The paper provisions one interactive service; the multi-service
//! scenarios provision N of them, each drawing demand from its own
//! traffic model. A [`TrafficModel`] is a *pure function of time and a
//! seed* — `rps(t)` composes a base request rate with a diurnal cosine
//! curve and an optional Gamma-distributed burst overlay, and
//! [`required_nodes`](TrafficModel::required_nodes) converts requests/s
//! into the node count a service must keep provisioned (the
//! requests/s → required-node curve). Determinism matters: episode
//! replays, lockstep batching and property tests all re-evaluate the
//! curve, so burst multipliers are drawn from seed-split per-interval
//! streams ([`crate::seed::split_seed`]), never from shared RNG state.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, StandardNormal};
use serde::{Deserialize, Serialize};

use crate::seed::split_seed;
use crate::time::{DAY, HOUR};

/// Gamma-distributed burst overlay: every `period` seconds the model
/// draws a fresh load multiplier from Gamma(`shape`, `scale`).
///
/// Gamma is the standard model for over-dispersed arrival intensities
/// (a Gamma-mixed Poisson is a negative-binomial arrival process): small
/// `shape` gives rare, violent spikes; large `shape` approaches steady
/// load. The multiplier is held constant within each interval and drawn
/// independently per interval from a seed-split stream, so the overlay
/// is deterministic in `(seed, t)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaBurst {
    /// Gamma shape `k` (dispersion: smaller = burstier).
    pub shape: f64,
    /// Gamma scale `θ`; the multiplier's mean is `shape · scale`.
    pub scale: f64,
    /// Seconds each drawn multiplier stays in force.
    pub period: i64,
}

impl GammaBurst {
    /// Mean-one burst overlay (`scale = 1/shape`): bursts redistribute
    /// load over time without changing the long-run average.
    pub fn mean_one(shape: f64, period: i64) -> Self {
        Self {
            shape,
            scale: 1.0 / shape.max(1e-9),
            period: period.max(1),
        }
    }
}

/// A service's demand curve: requests/s as a deterministic function of
/// time, plus the capacity model that turns it into required nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// Baseline request rate, requests/s.
    pub base_rps: f64,
    /// Requests/s one node sustains at the service's latency target
    /// (tighter latency SLOs mean fewer rps per node).
    pub rps_per_node: f64,
    /// Relative diurnal swing in `[0, 1)`: `rps` scales by
    /// `1 + amplitude·cos(…)` peaking at `peak_hour`.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) of the diurnal peak.
    pub peak_hour: f64,
    /// Optional Gamma burst overlay.
    pub burst: Option<GammaBurst>,
    /// Seed of the burst streams (unused without an overlay).
    pub seed: u64,
}

impl TrafficModel {
    /// Flat demand pinned to exactly `nodes` nodes at all times — the
    /// degenerate model under which a multi-service episode collapses to
    /// the fixed-size single-service episode.
    pub fn constant(nodes: u32) -> Self {
        Self {
            base_rps: f64::from(nodes),
            rps_per_node: 1.0,
            diurnal_amplitude: 0.0,
            peak_hour: 14.0,
            burst: None,
            seed: 0,
        }
    }

    /// Diurnal model: `base_rps` swinging by `amplitude` with the peak at
    /// `peak_hour`, no bursts.
    pub fn diurnal(base_rps: f64, rps_per_node: f64, amplitude: f64, peak_hour: f64) -> Self {
        Self {
            base_rps,
            rps_per_node: rps_per_node.max(1e-9),
            diurnal_amplitude: amplitude.clamp(0.0, 0.95),
            peak_hour,
            burst: None,
            seed: 0,
        }
    }

    /// Adds a Gamma burst overlay drawn from `seed`-split streams.
    pub fn with_burst(mut self, burst: GammaBurst, seed: u64) -> Self {
        self.burst = Some(burst);
        self.seed = seed;
        self
    }

    /// The diurnal factor at `t` (cosine peaking at `peak_hour`).
    fn diurnal_factor(&self, t: i64) -> f64 {
        if self.diurnal_amplitude == 0.0 {
            return 1.0;
        }
        let hour = (t.rem_euclid(DAY)) as f64 / HOUR as f64;
        let phase = (hour - self.peak_hour) / 24.0 * std::f64::consts::TAU;
        1.0 + self.diurnal_amplitude * phase.cos()
    }

    /// The burst multiplier in force at `t` (1.0 without an overlay).
    /// Piecewise constant: one Gamma draw per `period`-second interval,
    /// from the interval's own seed-split stream.
    pub fn burst_multiplier(&self, t: i64) -> f64 {
        let Some(b) = self.burst else { return 1.0 };
        let interval = t.div_euclid(b.period);
        let mut rng = StdRng::seed_from_u64(split_seed(self.seed, interval as u64));
        sample_gamma(&mut rng, b.shape) * b.scale
    }

    /// Requests/s at `t`.
    pub fn rps(&self, t: i64) -> f64 {
        self.base_rps * self.diurnal_factor(t) * self.burst_multiplier(t)
    }

    /// The requests/s → required-node curve at `t`: the node count that
    /// serves `rps(t)` at the service's per-node capacity (at least 1 —
    /// a live service never scales to zero).
    pub fn required_nodes(&self, t: i64) -> u32 {
        (self.rps(t) / self.rps_per_node).ceil().max(1.0) as u32
    }

    /// The largest required-node count over `[t0, t1]` sampled at `step`
    /// seconds — the capacity a static provisioner would pin.
    pub fn peak_nodes(&self, t0: i64, t1: i64, step: i64) -> u32 {
        let step = step.max(1);
        let mut peak = 1;
        let mut t = t0;
        while t <= t1 {
            peak = peak.max(self.required_nodes(t));
            t += step;
        }
        peak
    }
}

/// One draw from Gamma(`shape`, 1) via Marsaglia–Tsang squeeze
/// (rejection over a scaled Normal cube), with the standard
/// `U^{1/shape}` boost for `shape < 1`. The vendored `rand_distr`
/// carries only Normal/LogNormal/Exp, so the Gamma sampler lives here.
fn sample_gamma(rng: &mut StdRng, shape: f64) -> f64 {
    let shape = shape.max(1e-9);
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x: f64 = StandardNormal.sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_pins_the_node_count() {
        let m = TrafficModel::constant(3);
        for t in [0, HOUR, DAY + 7 * HOUR, 30 * DAY] {
            assert_eq!(m.required_nodes(t), 3);
            assert!((m.rps(t) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diurnal_peaks_at_peak_hour_and_troughs_opposite() {
        let m = TrafficModel::diurnal(100.0, 10.0, 0.4, 14.0);
        let peak = m.rps(14 * HOUR);
        let trough = m.rps(2 * HOUR);
        assert!((peak - 140.0).abs() < 1e-6, "peak {peak}");
        assert!((trough - 60.0).abs() < 1e-6, "trough {trough}");
        // Same hour next day: identical (pure function of time-of-day).
        assert_eq!(m.rps(14 * HOUR), m.rps(DAY + 14 * HOUR));
        assert_eq!(m.required_nodes(14 * HOUR), 14);
        assert_eq!(m.required_nodes(2 * HOUR), 6);
    }

    #[test]
    fn burst_multiplier_is_deterministic_and_interval_constant() {
        let m = TrafficModel::diurnal(50.0, 5.0, 0.2, 12.0)
            .with_burst(GammaBurst::mean_one(2.0, HOUR), 77);
        let a = m.burst_multiplier(10 * MINUTE_S);
        let b = m.burst_multiplier(50 * MINUTE_S);
        assert_eq!(a, b, "same interval, same draw");
        assert_eq!(m.rps(10 * MINUTE_S), m.rps(10 * MINUTE_S));
        // Across intervals the draws differ (with overwhelming probability
        // for this seed — pinned here, not probabilistic).
        let c = m.burst_multiplier(HOUR + 10 * MINUTE_S);
        assert_ne!(a, c);
    }
    const MINUTE_S: i64 = 60;

    #[test]
    fn mean_one_bursts_average_to_one() {
        let b = GammaBurst::mean_one(3.0, HOUR);
        let m = TrafficModel::diurnal(1.0, 1.0, 0.0, 0.0).with_burst(b, 9);
        let n = 4000;
        let mean: f64 = (0..n).map(|i| m.burst_multiplier(i * HOUR)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "empirical mean {mean}");
    }

    #[test]
    fn gamma_sampler_matches_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        for &shape in &[0.5, 1.0, 2.5, 8.0] {
            let n = 6000;
            let draws: Vec<f64> = (0..n).map(|_| sample_gamma(&mut rng, shape)).collect();
            let mean = draws.iter().sum::<f64>() / n as f64;
            let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (n - 1) as f64;
            // Gamma(k, 1): mean k, variance k.
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
            assert!(
                (var - shape).abs() < 0.4 * shape.max(1.0),
                "shape {shape} var {var}"
            );
            assert!(draws.iter().all(|&d| d > 0.0));
        }
    }

    #[test]
    fn peak_nodes_bounds_the_sampled_curve() {
        let m = TrafficModel::diurnal(80.0, 8.0, 0.5, 18.0);
        let peak = m.peak_nodes(0, 2 * DAY, 10 * 60);
        assert_eq!(peak, 15, "ceil(80·1.5/8)");
        let mut t = 0;
        while t <= 2 * DAY {
            assert!(m.required_nodes(t) <= peak);
            t += 600;
        }
    }

    #[test]
    fn required_nodes_never_scales_to_zero() {
        let m = TrafficModel::diurnal(0.001, 100.0, 0.9, 3.0);
        assert_eq!(m.required_nodes(15 * HOUR), 1);
    }
}
