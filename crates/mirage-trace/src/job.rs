//! The job record model.
//!
//! Mirrors the fields the paper collects from the Slurm accounting database:
//! `JobID, JobName, UserID, SubmitTime, StartTime, EndTime, Timelimit,
//! NumNodes` (§3). `runtime` is the job's actual execution duration; for a
//! freshly generated synthetic job `start`/`end` are `None` and get filled in
//! when the trace is replayed through the simulator (the production trace
//! has them recorded by the real scheduler).

use serde::{Deserialize, Serialize};

/// How a job relates to a heterogeneous cluster's typed node pools.
///
/// Homogeneous traces leave every job at the default ([`Anywhere`]), which
/// keeps pre-pool records and simulators byte-identical. On a pooled
/// cluster the simulator's placement model reads this to decide which
/// pools to fill first and whether an off-type placement carries a
/// slowdown penalty.
///
/// [`Anywhere`]: PoolRequest::Anywhere
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PoolRequest {
    /// Runs on any pool, at that pool's type-dependent speed.
    #[default]
    Anywhere,
    /// Prefers nodes of the named pool kind; matching pools fill first,
    /// but spilling elsewhere carries no penalty beyond pool speed.
    Prefer(String),
    /// Requires the named pool kind; capacity pressure can still spill it
    /// elsewhere, but an off-type placement is penalized as contended.
    Demand(String),
}

impl PoolRequest {
    /// The pool kind this request names, if any.
    pub fn kind(&self) -> Option<&str> {
        match self {
            PoolRequest::Anywhere => None,
            PoolRequest::Prefer(k) | PoolRequest::Demand(k) => Some(k),
        }
    }
}

/// A single batch job, either freshly generated (no `start`/`end`) or
/// completed (replayed through a scheduler, or recorded by one).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Unique job id within the trace.
    pub id: u64,
    /// Job name as submitted. Chained sub-jobs share a prefix and end in
    /// `_<k>` (e.g. `bert_pretrain_3`), which the §3.2 cleaner merges.
    pub name: String,
    /// Owning user id.
    pub user: u32,
    /// Submission timestamp (seconds since trace epoch).
    pub submit: i64,
    /// Number of requested nodes.
    pub nodes: u32,
    /// Wall-clock limit requested at submission (seconds).
    pub timelimit: i64,
    /// Actual execution duration (seconds). Always `<= timelimit` for jobs
    /// that ran to completion; jobs killed at the limit have
    /// `runtime == timelimit`.
    pub runtime: i64,
    /// Dispatch timestamp, if the job has been scheduled.
    pub start: Option<i64>,
    /// Completion timestamp, if the job has finished.
    pub end: Option<i64>,
    /// Node-pool request on heterogeneous clusters. Defaults to
    /// [`PoolRequest::Anywhere`], which is the homogeneous behaviour.
    #[serde(default)]
    pub pool: PoolRequest,
}

impl JobRecord {
    /// Creates a pending job (not yet scheduled).
    pub fn new(
        id: u64,
        name: impl Into<String>,
        user: u32,
        submit: i64,
        nodes: u32,
        timelimit: i64,
        runtime: i64,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            user,
            submit,
            nodes,
            timelimit,
            runtime,
            start: None,
            end: None,
            pool: PoolRequest::Anywhere,
        }
    }

    /// Attaches a node-pool request (builder style).
    pub fn with_pool(mut self, pool: PoolRequest) -> Self {
        self.pool = pool;
        self
    }

    /// Queue wait time (start − submit), if the job has been scheduled.
    #[inline]
    pub fn wait(&self) -> Option<i64> {
        self.start.map(|s| s - self.submit)
    }

    /// Node-hours actually consumed (`nodes × runtime`), in hours.
    #[inline]
    pub fn node_hours(&self) -> f64 {
        self.nodes as f64 * self.runtime as f64 / 3600.0
    }

    /// Whether this is one of the "noisy" short jobs the paper calls out on
    /// the RTX cluster (runs for less than 30 seconds).
    #[inline]
    pub fn is_short(&self) -> bool {
        self.runtime < 30
    }

    /// Whether the job uses more than one node.
    #[inline]
    pub fn is_multi_node(&self) -> bool {
        self.nodes > 1
    }

    /// Splits `name` into a chained-job prefix and sub-job index if the name
    /// matches the `<prefix>_<digits>` convention used for consecutive
    /// sub-jobs.
    pub fn subjob_key(&self) -> Option<(&str, u64)> {
        let (prefix, idx) = self.name.rsplit_once('_')?;
        if prefix.is_empty() || idx.is_empty() || !idx.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        idx.parse::<u64>().ok().map(|i| (prefix, i))
    }

    /// Marks the job as started at `t` and completed after its runtime.
    pub fn complete_at(&mut self, start: i64) {
        self.start = Some(start);
        self.end = Some(start + self.runtime);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR;

    fn job(name: &str) -> JobRecord {
        JobRecord::new(1, name, 7, 100, 2, 4 * HOUR, HOUR)
    }

    #[test]
    fn wait_requires_start() {
        let mut j = job("a");
        assert_eq!(j.wait(), None);
        j.complete_at(400);
        assert_eq!(j.wait(), Some(300));
        assert_eq!(j.end, Some(400 + HOUR));
    }

    #[test]
    fn node_hours_scale_with_nodes_and_runtime() {
        let j = job("a");
        assert!((j.node_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn short_job_detection() {
        let mut j = job("a");
        assert!(!j.is_short());
        j.runtime = 29;
        assert!(j.is_short());
        j.runtime = 30;
        assert!(!j.is_short());
    }

    #[test]
    fn subjob_key_parses_suffix() {
        assert_eq!(job("train_12").subjob_key(), Some(("train", 12)));
        assert_eq!(job("train_a12").subjob_key(), None);
        assert_eq!(job("plain").subjob_key(), None);
        assert_eq!(job("_3").subjob_key(), None);
        assert_eq!(job("deep_run_003").subjob_key(), Some(("deep_run", 3)));
    }
}
