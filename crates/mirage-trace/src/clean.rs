//! Trace cleaning pipeline (§3.2 of the paper).
//!
//! Two manual filters are applied to the raw accounting records before any
//! model sees them:
//!
//! 1. **Over-sized requests** — jobs requesting more nodes than the
//!    production partition has (left over from the early-production phase
//!    when all nodes were in one partition) are dropped.
//! 2. **Sub-job merging** — jobs recorded separately but belonging to one
//!    logical Slurm job (identical name prefix followed by a sub-job index)
//!    are merged: the merged job's submit is the first sub-job's submit, its
//!    span covers first start to last end, and its runtime is the summed
//!    runtime of its parts.
//!
//! Dependencies between jobs are *not* reconstructed — like the paper, we
//! treat dependent jobs as independent submissions at different times.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::job::JobRecord;

/// What the cleaning pass did, for Table 1 style reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanReport {
    /// Jobs in the raw trace.
    pub original: usize,
    /// Jobs dropped for requesting more nodes than the partition has.
    pub oversized_removed: usize,
    /// Chained groups that were collapsed into single jobs.
    pub groups_merged: usize,
    /// Sub-jobs absorbed by merging (records removed beyond the survivor).
    pub subjobs_absorbed: usize,
    /// Jobs remaining after cleaning.
    pub filtered: usize,
}

/// Runs the full §3.2 pipeline: over-sized filter, then sub-job merge.
/// Returns the cleaned jobs (sorted by submit time, ids reassigned) and a
/// report of what was removed.
pub fn clean_trace(jobs: &[JobRecord], partition_nodes: u32) -> (Vec<JobRecord>, CleanReport) {
    let original = jobs.len();
    let sized: Vec<JobRecord> = jobs
        .iter()
        .filter(|j| j.nodes <= partition_nodes)
        .cloned()
        .collect();
    let oversized_removed = original - sized.len();

    let (mut merged, groups_merged, subjobs_absorbed) = merge_subjobs(sized);

    merged.sort_by_key(|j| (j.submit, j.id));
    for (i, j) in merged.iter_mut().enumerate() {
        j.id = i as u64 + 1;
    }
    let filtered = merged.len();
    (
        merged,
        CleanReport {
            original,
            oversized_removed,
            groups_merged,
            subjobs_absorbed,
            filtered,
        },
    )
}

/// Merges sub-jobs sharing a `<prefix>_<index>` name (same user) into one
/// record. Returns (jobs, merged group count, absorbed record count).
fn merge_subjobs(jobs: Vec<JobRecord>) -> (Vec<JobRecord>, usize, usize) {
    // Group indices by (user, name prefix).
    let mut groups: HashMap<(u32, String), Vec<usize>> = HashMap::new();
    for (i, j) in jobs.iter().enumerate() {
        if let Some((prefix, _)) = j.subjob_key() {
            groups
                .entry((j.user, prefix.to_string()))
                .or_default()
                .push(i);
        }
    }

    let mut absorbed = vec![false; jobs.len()];
    let mut replacements: Vec<JobRecord> = Vec::new();
    let mut groups_merged = 0usize;
    let mut subjobs_absorbed = 0usize;

    let mut keys: Vec<_> = groups.keys().cloned().collect();
    keys.sort(); // deterministic iteration order
    for key in keys {
        let members = &groups[&key];
        if members.len() < 2 {
            continue; // a lone "_3" suffix is just a name, not a chain
        }
        let mut parts: Vec<&JobRecord> = members.iter().map(|&i| &jobs[i]).collect();
        parts.sort_by_key(|j| (j.subjob_key().map(|(_, k)| k).unwrap_or(u64::MAX), j.submit));

        let first = parts[0];
        let mut merged = first.clone();
        merged.name = key.1.clone();
        merged.runtime = parts.iter().map(|p| p.runtime).sum();
        merged.timelimit = parts
            .iter()
            .map(|p| p.timelimit)
            .max()
            .unwrap_or(first.timelimit);
        merged.nodes = parts.iter().map(|p| p.nodes).max().unwrap_or(first.nodes);
        // Start of the first sub-job, end of the last (paper wording).
        merged.start = parts.iter().filter_map(|p| p.start).min();
        merged.end = parts.iter().filter_map(|p| p.end).max();

        for &i in members {
            absorbed[i] = true;
        }
        groups_merged += 1;
        subjobs_absorbed += members.len() - 1;
        replacements.push(merged);
    }

    let mut out: Vec<JobRecord> = jobs
        .into_iter()
        .zip(absorbed)
        .filter_map(|(j, a)| (!a).then_some(j))
        .collect();
    out.extend(replacements);
    (out, groups_merged, subjobs_absorbed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR;

    fn j(id: u64, name: &str, user: u32, submit: i64, nodes: u32, runtime: i64) -> JobRecord {
        JobRecord::new(
            id,
            name,
            user,
            submit,
            nodes,
            2 * runtime.max(HOUR),
            runtime,
        )
    }

    #[test]
    fn oversized_jobs_are_dropped() {
        let jobs = vec![
            j(1, "a", 1, 0, 4, HOUR),
            j(2, "b", 1, 10, 100, HOUR),
            j(3, "c", 2, 20, 8, HOUR),
        ];
        let (clean, report) = clean_trace(&jobs, 8);
        assert_eq!(clean.len(), 2);
        assert_eq!(report.oversized_removed, 1);
        assert_eq!(report.original, 3);
        assert_eq!(report.filtered, 2);
    }

    #[test]
    fn subjob_chains_merge_into_one_record() {
        let jobs = vec![
            j(1, "train_0", 5, 0, 2, HOUR),
            j(2, "train_1", 5, HOUR, 2, HOUR),
            j(3, "train_2", 5, 2 * HOUR, 2, 2 * HOUR),
            j(4, "other", 6, 50, 1, HOUR),
        ];
        let (clean, report) = clean_trace(&jobs, 16);
        assert_eq!(report.groups_merged, 1);
        assert_eq!(report.subjobs_absorbed, 2);
        assert_eq!(clean.len(), 2);
        let merged = clean.iter().find(|x| x.name == "train").unwrap();
        assert_eq!(merged.submit, 0);
        assert_eq!(merged.runtime, 4 * HOUR);
        assert_eq!(merged.nodes, 2);
    }

    #[test]
    fn merged_span_covers_first_start_to_last_end() {
        let mut a = j(1, "svc_0", 5, 0, 1, HOUR);
        a.complete_at(10);
        let mut b = j(2, "svc_1", 5, HOUR, 1, HOUR);
        b.complete_at(2 * HOUR);
        let (clean, _) = clean_trace(&[a, b], 4);
        let m = &clean[0];
        assert_eq!(m.start, Some(10));
        assert_eq!(m.end, Some(3 * HOUR));
    }

    #[test]
    fn same_prefix_different_users_not_merged() {
        let jobs = vec![j(1, "run_0", 1, 0, 1, HOUR), j(2, "run_1", 2, 10, 1, HOUR)];
        let (clean, report) = clean_trace(&jobs, 4);
        assert_eq!(clean.len(), 2);
        assert_eq!(report.groups_merged, 0);
    }

    #[test]
    fn single_suffix_job_is_left_alone() {
        let jobs = vec![j(1, "exp_3", 1, 0, 1, HOUR)];
        let (clean, report) = clean_trace(&jobs, 4);
        assert_eq!(clean.len(), 1);
        assert_eq!(clean[0].name, "exp_3");
        assert_eq!(report.groups_merged, 0);
    }

    #[test]
    fn ids_are_reassigned_sequentially() {
        let jobs = vec![j(9, "b", 1, 100, 1, HOUR), j(7, "a", 1, 0, 1, HOUR)];
        let (clean, _) = clean_trace(&jobs, 4);
        assert_eq!(clean[0].name, "a");
        assert_eq!(clean[0].id, 1);
        assert_eq!(clean[1].id, 2);
    }

    #[test]
    fn empty_trace_is_fine() {
        let (clean, report) = clean_trace(&[], 4);
        assert!(clean.is_empty());
        assert_eq!(report.original, 0);
        assert_eq!(report.filtered, 0);
    }
}
