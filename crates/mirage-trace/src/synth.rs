//! Seeded synthetic workload generator.
//!
//! Substitutes for the production TACC traces (see DESIGN.md §3). The
//! generator is calibrated against everything the paper publishes about the
//! three clusters:
//!
//! * monthly job volume and its variability (Fig 2),
//! * requested-node mix with the published per-cluster means (§3.1),
//! * multi-node jobs dominating node-hour consumption (Fig 3) via
//!   size-correlated runtimes,
//! * the RTX short-job spike (96 780 sub-30 s jobs),
//! * demand-to-capacity pressure (`load_intensity`) so the replayed trace
//!   reproduces the congestion regimes of Fig 1 / Fig 4, and
//! * the data-cleaning anomalies of §3.2 (early over-sized requests and
//!   chained sub-jobs) so the cleaning pipeline has real work to do.
//!
//! Arrivals follow a Markov-modulated non-homogeneous Poisson process:
//! a base rate per month (log-normal monthly modulation) shaped by diurnal
//! and weekly cycles, multiplied during bursty episodes governed by a
//! two-state Markov chain. Everything is driven by a single `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal};
use serde::{Deserialize, Serialize};

use crate::cluster::ClusterProfile;
use crate::job::{JobRecord, PoolRequest};
use crate::time::{day_of_week, time_of_day, DAY, HOUR, MONTH};

/// Wall-clock limit grid users pick from (typical site queue limits).
pub const TIMELIMIT_GRID: [i64; 7] = [
    HOUR,
    2 * HOUR,
    4 * HOUR,
    8 * HOUR,
    12 * HOUR,
    24 * HOUR,
    48 * HOUR,
];

/// Configuration for one synthetic trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Cluster being modelled.
    pub profile: ClusterProfile,
    /// Master seed; two generators with equal configs produce equal traces.
    pub seed: u64,
    /// Overrides `profile.trace_months` when set (handy for tests).
    pub months: Option<u32>,
    /// Injects the §3.2 anomalies (over-sized early jobs, sub-job chains).
    pub anomalies: bool,
    /// Blanks out a one-day maintenance window each month (§3.2).
    pub maintenance: bool,
    /// Explicit arrival-rate multiplier. `None` auto-calibrates demand to
    /// `profile.load_intensity` with a two-pass generation.
    pub rate_scale: Option<f64>,
    /// Number of distinct users submitting work.
    pub user_count: u32,
}

impl SynthConfig {
    /// Default configuration for a cluster profile.
    pub fn new(profile: ClusterProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            months: None,
            anomalies: true,
            maintenance: true,
            rate_scale: None,
            user_count: 150,
        }
    }

    /// Trace span in seconds.
    pub fn span(&self) -> i64 {
        i64::from(self.months.unwrap_or(self.profile.trace_months)) * MONTH
    }
}

/// Deterministic synthetic trace generator.
pub struct TraceGenerator {
    cfg: SynthConfig,
}

/// Internal per-generation state derived from the seed.
struct GenState {
    rng: StdRng,
    month_factor: Vec<f64>,
    day_factor: Vec<f64>,
    burst_intervals: Vec<(i64, i64)>,
    maintenance_windows: Vec<(i64, i64)>,
    user_cdf: Vec<f64>,
    size_choices: Vec<u32>,
    size_cdf: Vec<f64>,
}

impl TraceGenerator {
    /// Creates a generator for `cfg`.
    pub fn new(cfg: SynthConfig) -> Self {
        Self { cfg }
    }

    /// Convenience constructor from a profile and seed.
    pub fn for_cluster(profile: ClusterProfile, seed: u64) -> Self {
        Self::new(SynthConfig::new(profile, seed))
    }

    /// Generator configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.cfg
    }

    /// Generates the full trace, sorted by submit time with sequential ids.
    ///
    /// When `rate_scale` is `None` the generator runs twice: a first pass
    /// measures the realized demand-to-capacity ratio, and the second pass
    /// rescales *runtimes* so mean offered load matches
    /// `profile.load_intensity` while the submission count stays on the
    /// published jobs-per-month target. Both passes are seeded identically,
    /// so the output is still a pure function of the config.
    pub fn generate(&self) -> Vec<JobRecord> {
        match self.cfg.rate_scale {
            Some(scale) => self.generate_with_scale(scale, 1.0),
            None => {
                let probe = self.generate_with_scale(1.0, 1.0);
                let ratio = demand_ratio(&probe, &self.cfg.profile, self.cfg.span());
                let scale = if ratio > 1e-9 {
                    self.cfg.profile.load_intensity / ratio
                } else {
                    1.0
                };
                self.generate_with_scale(1.0, scale)
            }
        }
    }

    fn generate_with_scale(&self, rate_scale: f64, runtime_scale: f64) -> Vec<JobRecord> {
        let cfg = &self.cfg;
        let span = cfg.span();
        let months = cfg.months.unwrap_or(cfg.profile.trace_months) as usize;
        let mut st = self.derive_state(months);

        let base_rate = cfg.profile.jobs_per_month / MONTH as f64 * rate_scale;
        // Envelope for thinning: peak diurnal (1.45) × weekday (1.12) ×
        // burst multiplier, per-month factor applied inside the loop.
        let burst_mult = 1.0 + 4.0 * cfg.profile.burstiness;
        let mut jobs = Vec::with_capacity((cfg.profile.jobs_per_month * months as f64) as usize);

        let mut serial: u64 = 0;
        for m in 0..months {
            let month_start = m as i64 * MONTH;
            let month_end = month_start + MONTH;
            let lambda_max = base_rate * st.month_factor[m] * 1.25 * 1.45 * 1.12 * burst_mult;
            if lambda_max <= 0.0 {
                continue;
            }
            let gap = Exp::new(lambda_max).expect("positive rate");
            let mut t = month_start as f64;
            loop {
                t += gap.sample(&mut st.rng);
                let ti = t as i64;
                if ti >= month_end {
                    break;
                }
                let day = (ti / DAY) as usize;
                let rate = base_rate
                    * st.month_factor[m]
                    * st.day_factor[day.min(st.day_factor.len() - 1)]
                    * diurnal_factor(ti)
                    * weekly_factor(ti)
                    * burst_factor(&st.burst_intervals, ti, burst_mult);
                if st.rng.gen::<f64>() * lambda_max > rate {
                    continue; // thinned out
                }
                if in_window(&st.maintenance_windows, ti) {
                    continue; // site maintenance: nobody submits
                }
                serial += 1;
                self.emit_job(&mut st, &mut jobs, ti, serial, span, runtime_scale);
            }
        }

        jobs.sort_by_key(|j| (j.submit, j.id));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = i as u64 + 1;
        }
        jobs
    }

    /// Emits one logical submission: usually a single job, occasionally a
    /// chained group of sub-jobs or an over-sized request (when anomalies
    /// are enabled).
    fn emit_job(
        &self,
        st: &mut GenState,
        out: &mut Vec<JobRecord>,
        submit: i64,
        serial: u64,
        span: i64,
        runtime_scale: f64,
    ) {
        let cfg = &self.cfg;
        let user = sample_cdf(&st.user_cdf, st.rng.gen::<f64>()) as u32;
        // Pool request for this logical submission (chained sub-jobs inherit
        // it: a checkpoint-restart sequence stays on one node type). Draws
        // nothing on homogeneous profiles, keeping legacy traces
        // byte-identical.
        let pool = self.sample_pool(st);

        // §3.2 anomaly (a): early-production jobs requesting more nodes than
        // the partition has. Confined to the first two months like the paper
        // describes ("in the early-production phase ... all nodes are in the
        // same partition").
        if cfg.anomalies && submit < 2 * MONTH && st.rng.gen::<f64>() < 0.003 {
            let nodes = cfg.profile.nodes + 1 + st.rng.gen_range(0..cfg.profile.nodes);
            let runtime = st.rng.gen_range(HOUR..8 * HOUR);
            let mut j = JobRecord::new(
                0,
                format!("u{user}_oversized{serial}"),
                user,
                submit,
                nodes,
                48 * HOUR,
                runtime,
            );
            j.timelimit = j.timelimit.min(cfg.profile.max_timelimit);
            out.push(j.with_pool(pool));
            return;
        }

        let nodes = st.size_choices[sample_cdf(&st.size_cdf, st.rng.gen::<f64>())];
        let (runtime, timelimit) = self.sample_runtime(st, nodes, runtime_scale);

        // §3.2 anomaly (b): chained sub-jobs (checkpoint-restart sequences)
        // recorded separately in the accounting DB. The cleaner merges them
        // back; the chain volume is calibrated so the original/filtered
        // ratio matches Table 1.
        if cfg.anomalies && st.rng.gen::<f64>() < cfg.profile.chain_fraction {
            let max_len = (2.0 * (cfg.profile.chain_len_mean - 1.0)).round().max(3.0) as usize;
            let parts = st.rng.gen_range(2..=max_len);
            let mut sub_submit = submit;
            for k in 0..parts {
                let (sub_runtime, sub_limit) = self.sample_runtime(st, nodes, runtime_scale);
                if sub_submit >= span {
                    break;
                }
                out.push(
                    JobRecord::new(
                        0,
                        format!("u{user}_chain{serial}_{k}"),
                        user,
                        sub_submit,
                        nodes,
                        sub_limit,
                        sub_runtime,
                    )
                    .with_pool(pool.clone()),
                );
                // Next sub-job enters the queue once the previous one would
                // have finished (Slurm releases dependents on completion).
                sub_submit += sub_runtime + st.rng.gen_range(60..30 * 60);
            }
            return;
        }

        out.push(
            JobRecord::new(
                0,
                format!("u{user}_job{serial}"),
                user,
                submit,
                nodes,
                timelimit,
                runtime,
            )
            .with_pool(pool),
        );
    }

    /// Samples a pool request for one logical submission.
    ///
    /// Homogeneous profiles (empty `pools`) return [`PoolRequest::Anywhere`]
    /// without touching the RNG, so adding pools to a profile is the only
    /// way this changes a trace. On pooled profiles the kind follows the
    /// pools' capacity fractions and the binding strength splits roughly
    /// 30 % demand / 40 % prefer / 30 % anywhere.
    fn sample_pool(&self, st: &mut GenState) -> PoolRequest {
        let pools = &self.cfg.profile.pools;
        if pools.is_empty() {
            return PoolRequest::Anywhere;
        }
        let total: f64 = pools.iter().map(|p| p.fraction.max(0.0)).sum();
        let total = if total > 0.0 { total } else { 1.0 };
        let kind_u = st.rng.gen::<f64>();
        let mut kind = pools[pools.len() - 1].kind.as_str();
        let mut acc = 0.0;
        for p in pools {
            acc += p.fraction.max(0.0) / total;
            if kind_u < acc {
                kind = p.kind.as_str();
                break;
            }
        }
        let style = st.rng.gen::<f64>();
        if style < 0.30 {
            PoolRequest::Demand(kind.to_string())
        } else if style < 0.70 {
            PoolRequest::Prefer(kind.to_string())
        } else {
            PoolRequest::Anywhere
        }
    }

    /// Samples (runtime, timelimit) for a job of the given size.
    /// `runtime_scale` is the demand-calibration factor from the two-pass
    /// generation (1.0 on the probe pass).
    fn sample_runtime(&self, st: &mut GenState, nodes: u32, runtime_scale: f64) -> (i64, i64) {
        let cfg = &self.cfg;
        if st.rng.gen::<f64>() < cfg.profile.short_job_fraction {
            // "Noisy" short job: asks for hours, runs for seconds.
            let runtime = st.rng.gen_range(5..30);
            let limit = TIMELIMIT_GRID[st.rng.gen_range(2..TIMELIMIT_GRID.len())];
            return (runtime, limit.min(cfg.profile.max_timelimit));
        }
        // Multi-node jobs run longer — this is what makes them dominate
        // node-hour consumption (Fig 3) despite being a small job fraction.
        let size_stretch = 1.0 + 0.8 * (nodes as f64).ln();
        let median = cfg.profile.median_runtime as f64 * size_stretch * runtime_scale;
        let dist = LogNormal::new(median.ln(), 1.3).expect("valid lognormal");
        let mut runtime = dist.sample(&mut st.rng) as i64;
        runtime = runtime.clamp(60, cfg.profile.max_timelimit);

        // Users over-request by a 1.1–4× slack, snapped up to the grid.
        let slack = 1.1 + 2.9 * st.rng.gen::<f64>();
        let want = (runtime as f64 * slack) as i64;
        let limit = TIMELIMIT_GRID
            .iter()
            .copied()
            .find(|&g| g >= want)
            .unwrap_or(cfg.profile.max_timelimit)
            .min(cfg.profile.max_timelimit);
        // A few jobs hit their wall-clock limit exactly (killed by Slurm).
        if st.rng.gen::<f64>() < 0.05 {
            runtime = limit;
        }
        (runtime.min(limit), limit)
    }

    fn derive_state(&self, months: usize) -> GenState {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Log-normal monthly volume modulation with the profile's CV.
        let cv = cfg.profile.monthly_cv.max(1e-3);
        let sigma = (1.0 + cv * cv).ln().sqrt();
        let mu = -sigma * sigma / 2.0; // unit mean
        let month_dist = LogNormal::new(mu, sigma).expect("valid lognormal");
        // Clamp the tails: the generator is open-loop (chained sub-jobs do
        // not stretch out under congestion the way real dependent jobs do),
        // so an unbounded month-long overload would push the queue into a
        // runaway backlog instead of the paper's heavy-but-recovering
        // regimes. Month-scale variation is kept mild; most congestion
        // dynamics come from the day-scale campaign factor below.
        let month_factor: Vec<f64> = (0..months)
            .map(|_| month_dist.sample(&mut rng).clamp(0.7, 1.1))
            .collect();

        // Day-scale demand campaigns: a log-normal Ornstein-Uhlenbeck
        // factor with a ~4-day correlation time. Multi-day busy stretches
        // build 20-60 h backlogs that drain again — the congestion pattern
        // behind Fig 1 / Fig 4 — without saturating whole months.
        let day_cv: f64 = 0.45;
        let day_sigma = (1.0 + day_cv * day_cv).ln().sqrt();
        let day_mu = -day_sigma * day_sigma / 2.0;
        let rho = (-1.0f64 / 4.0).exp();
        let n_days = months * 30 + 1;
        let mut day_factor = Vec::with_capacity(n_days);
        let mut x = 0.0f64;
        for _ in 0..n_days {
            let eps: f64 = rand_distr::StandardNormal.sample(&mut rng);
            x = rho * x + (1.0 - rho * rho).sqrt() * eps;
            day_factor.push((day_mu + day_sigma * x).exp().clamp(0.35, 1.25));
        }

        // Burst episodes: alternate calm (mean 6 h) / burst (mean 45 min).
        let span = cfg.span();
        let calm = Exp::new(1.0 / (6.0 * HOUR as f64)).unwrap();
        let burst = Exp::new(1.0 / (45.0 * 60.0_f64)).unwrap();
        let mut burst_intervals = Vec::new();
        let mut t = 0i64;
        while t < span {
            t += calm.sample(&mut rng) as i64 + 1;
            let b_end = t + burst.sample(&mut rng) as i64 + 1;
            if t >= span {
                break;
            }
            burst_intervals.push((t, b_end.min(span)));
            t = b_end;
        }

        // One-day maintenance window per month at a random day.
        let maintenance_windows = if cfg.maintenance {
            (0..months)
                .map(|m| {
                    let day = rng.gen_range(0..28) as i64;
                    let s = m as i64 * MONTH + day * DAY;
                    (s, s + DAY)
                })
                .collect()
        } else {
            Vec::new()
        };

        // Zipf user activity.
        let weights: Vec<f64> = (1..=cfg.user_count.max(1))
            .map(|r| 1.0 / r as f64)
            .collect();
        let user_cdf = to_cdf(&weights);

        // Requested-node mix: weights ∝ size^(−α), α solved so the mean
        // matches the cluster's published mean nodes/job. Sizes larger than
        // the partition are unreachable for legitimate jobs (only the §3.2
        // anomaly path emits those).
        let mut size_choices: Vec<u32> = vec![1, 2, 3, 4, 8, 16, 32];
        size_choices.retain(|&s| s <= cfg.profile.nodes);
        if size_choices.is_empty() {
            size_choices.push(1);
        }
        let alpha = solve_size_alpha(&size_choices, cfg.profile.mean_nodes_per_job);
        let size_weights: Vec<f64> = size_choices
            .iter()
            .map(|&s| (s as f64).powf(-alpha))
            .collect();
        let size_cdf = to_cdf(&size_weights);

        GenState {
            rng,
            month_factor,
            day_factor,
            burst_intervals,
            maintenance_windows,
            user_cdf,
            size_choices,
            size_cdf,
        }
    }
}

/// Diurnal arrival shape: peak mid-afternoon, trough before dawn.
fn diurnal_factor(t: i64) -> f64 {
    let tod = time_of_day(t) as f64 / DAY as f64; // 0..1
    let phase = (tod - 14.0 / 24.0) * std::f64::consts::TAU;
    1.0 + 0.45 * phase.cos()
}

/// Weekly arrival shape: weekdays busier than weekends.
fn weekly_factor(t: i64) -> f64 {
    if day_of_week(t) < 5 {
        1.12
    } else {
        0.70
    }
}

fn burst_factor(intervals: &[(i64, i64)], t: i64, mult: f64) -> f64 {
    if in_window(intervals, t) {
        mult
    } else {
        1.0
    }
}

/// Binary search over sorted, non-overlapping windows.
fn in_window(windows: &[(i64, i64)], t: i64) -> bool {
    match windows.binary_search_by(|&(s, _)| s.cmp(&t)) {
        Ok(_) => true,
        Err(0) => false,
        Err(i) => t < windows[i - 1].1,
    }
}

/// Converts weights to a normalized CDF for inverse-transform sampling.
fn to_cdf(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

/// Index of the first CDF entry ≥ `u` (u ∈ [0,1)).
fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

/// Bisection for the size-mix exponent: weights ∝ size^(−α) whose mean hits
/// `target`.
fn solve_size_alpha(sizes: &[u32], target: f64) -> f64 {
    let mean = |alpha: f64| -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for &s in sizes {
            let w = (s as f64).powf(-alpha);
            num += s as f64 * w;
            den += w;
        }
        num / den
    };
    let (mut lo, mut hi) = (0.0f64, 8.0f64);
    // mean(α) is strictly decreasing; clamp the target into the achievable
    // range before bisecting.
    let target = target.clamp(mean(hi), mean(lo));
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if mean(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One independently seeded [`TraceGenerator`] per service.
///
/// Multi-service scenarios replay a separate background workload stream
/// per service (each service's users submit their own batch jobs).
/// Deriving the seeds as `base.seed + i` would correlate the streams —
/// the generators' internal sub-streams (burst intervals, monthly
/// modulation) are themselves seed-offset — so each service's generator
/// is seeded through [`crate::seed::split_seed`], giving N mutually
/// independent, individually reproducible arrival processes from one
/// master seed.
pub fn service_generators(base: &SynthConfig, services: usize) -> Vec<TraceGenerator> {
    (0..services)
        .map(|i| {
            let mut cfg = base.clone();
            cfg.seed = crate::seed::split_seed(base.seed, i as u64);
            TraceGenerator::new(cfg)
        })
        .collect()
}

/// Realized demand-to-capacity ratio of a trace: node-seconds requested over
/// node-seconds available in the span.
pub fn demand_ratio(jobs: &[JobRecord], profile: &ClusterProfile, span: i64) -> f64 {
    let demand: f64 = jobs
        .iter()
        .filter(|j| j.nodes <= profile.nodes)
        .map(|j| j.nodes as f64 * j.runtime as f64)
        .sum();
    demand / (profile.nodes as f64 * span as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(seed: u64) -> SynthConfig {
        let mut cfg = SynthConfig::new(ClusterProfile::v100().scaled(0.3), seed);
        cfg.months = Some(2);
        cfg
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TraceGenerator::new(small_cfg(7)).generate();
        let b = TraceGenerator::new(small_cfg(7)).generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(small_cfg(1)).generate();
        let b = TraceGenerator::new(small_cfg(2)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn service_generators_are_independent_and_reproducible() {
        let base = small_cfg(7);
        let gens = service_generators(&base, 3);
        assert_eq!(gens.len(), 3);
        let traces: Vec<Vec<JobRecord>> = gens.iter().map(|g| g.generate()).collect();
        // Distinct from each other and from the master-seeded stream.
        let master = TraceGenerator::new(base.clone()).generate();
        for (i, t) in traces.iter().enumerate() {
            assert_ne!(*t, master, "service {i} echoed the master stream");
            for u in &traces[i + 1..] {
                assert_ne!(t, u, "two services share a stream");
            }
        }
        // Re-splitting reproduces every stream bit-for-bit.
        let again: Vec<Vec<JobRecord>> = service_generators(&base, 3)
            .iter()
            .map(|g| g.generate())
            .collect();
        assert_eq!(traces, again);
    }

    #[test]
    fn jobs_sorted_with_sequential_ids() {
        let jobs = TraceGenerator::new(small_cfg(3)).generate();
        for (i, w) in jobs.windows(2).enumerate() {
            assert!(w[0].submit <= w[1].submit, "unsorted at {i}");
        }
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.id, i as u64 + 1);
        }
    }

    #[test]
    fn runtimes_respect_limits() {
        let jobs = TraceGenerator::new(small_cfg(4)).generate();
        for j in &jobs {
            assert!(j.runtime > 0, "job {} has nonpositive runtime", j.id);
            assert!(
                j.runtime <= j.timelimit,
                "job {} exceeds its wall-clock limit",
                j.id
            );
            assert!(j.submit >= 0 && j.submit < 2 * MONTH);
            assert!(j.start.is_none() && j.end.is_none());
        }
    }

    #[test]
    fn auto_calibration_hits_target_load() {
        let cfg = small_cfg(5);
        let jobs = TraceGenerator::new(cfg.clone()).generate();
        let r = demand_ratio(&jobs, &cfg.profile, cfg.span());
        let target = cfg.profile.load_intensity;
        assert!(
            (r - target).abs() / target < 0.35,
            "demand ratio {r:.3} too far from target {target:.3}"
        );
    }

    #[test]
    fn anomalies_present_when_enabled() {
        let mut cfg = SynthConfig::new(ClusterProfile::v100().scaled(0.5), 11);
        cfg.months = Some(2);
        let jobs = TraceGenerator::new(cfg.clone()).generate();
        assert!(
            jobs.iter().any(|j| j.nodes > cfg.profile.nodes),
            "expected over-sized anomaly jobs"
        );
        assert!(
            jobs.iter().any(|j| j.name.contains("chain")),
            "expected chained sub-jobs"
        );
    }

    #[test]
    fn anomalies_absent_when_disabled() {
        let mut cfg = small_cfg(6);
        cfg.anomalies = false;
        let jobs = TraceGenerator::new(cfg.clone()).generate();
        assert!(jobs.iter().all(|j| j.nodes <= cfg.profile.nodes));
        assert!(jobs.iter().all(|j| !j.name.contains("chain")));
    }

    #[test]
    fn short_job_fraction_tracks_profile() {
        let mut cfg = SynthConfig::new(ClusterProfile::rtx().scaled(0.4), 9);
        cfg.months = Some(2);
        cfg.anomalies = false;
        let jobs = TraceGenerator::new(cfg.clone()).generate();
        let frac = jobs.iter().filter(|j| j.is_short()).count() as f64 / jobs.len() as f64;
        let target = cfg.profile.short_job_fraction;
        assert!(
            (frac - target).abs() < 0.08,
            "short fraction {frac:.3} vs target {target:.3}"
        );
    }

    #[test]
    fn mean_job_size_tracks_profile() {
        let mut cfg = SynthConfig::new(ClusterProfile::v100().scaled(0.5), 13);
        cfg.months = Some(3);
        cfg.anomalies = false;
        // Short jobs also draw sizes, so the overall mean tracks the target.
        let jobs = TraceGenerator::new(cfg.clone()).generate();
        let mean: f64 = jobs.iter().map(|j| j.nodes as f64).sum::<f64>() / jobs.len() as f64;
        assert!(
            (mean - 2.5).abs() < 0.5,
            "mean size {mean:.2} should be near 2.5"
        );
    }

    #[test]
    fn size_alpha_solver_is_monotone_and_accurate() {
        let sizes = vec![1, 2, 3, 4, 8, 16, 32];
        for target in [1.3, 1.6, 2.5, 5.0] {
            let alpha = solve_size_alpha(&sizes, target);
            let w: Vec<f64> = sizes.iter().map(|&s| (s as f64).powf(-alpha)).collect();
            let total: f64 = w.iter().sum();
            let mean: f64 = sizes
                .iter()
                .zip(&w)
                .map(|(&s, &wi)| s as f64 * wi)
                .sum::<f64>()
                / total;
            assert!((mean - target).abs() < 1e-6, "α solve failed for {target}");
        }
    }

    #[test]
    fn homogeneous_profiles_emit_no_pool_requests() {
        let jobs = TraceGenerator::new(small_cfg(7)).generate();
        assert!(jobs.iter().all(|j| j.pool == PoolRequest::Anywhere));
    }

    #[test]
    fn pooled_profiles_emit_a_deterministic_request_mix() {
        let mut cfg = small_cfg(7);
        cfg.profile.pools = ClusterProfile::pools_a100_v100();
        let jobs = TraceGenerator::new(cfg.clone()).generate();
        let again = TraceGenerator::new(cfg).generate();
        assert_eq!(jobs, again);
        let demand = jobs
            .iter()
            .filter(|j| matches!(j.pool, PoolRequest::Demand(_)))
            .count();
        let prefer = jobs
            .iter()
            .filter(|j| matches!(j.pool, PoolRequest::Prefer(_)))
            .count();
        let anywhere = jobs
            .iter()
            .filter(|j| j.pool == PoolRequest::Anywhere)
            .count();
        assert!(
            demand > 0 && prefer > 0 && anywhere > 0,
            "all request styles present: demand={demand} prefer={prefer} anywhere={anywhere}"
        );
        // Named kinds come from the profile's pool list.
        assert!(jobs
            .iter()
            .filter_map(|j| j.pool.kind())
            .all(|k| k == "a100" || k == "v100"));
        // Chained sub-jobs of one submission share a single request.
        for j in &jobs {
            if let Some((prefix, _)) = j.subjob_key() {
                for other in jobs
                    .iter()
                    .filter(|o| o.subjob_key().is_some_and(|(p, _)| p == prefix))
                {
                    assert_eq!(other.pool, j.pool, "chain {prefix} split across pools");
                }
            }
        }
    }

    #[test]
    fn window_lookup() {
        let w = vec![(10, 20), (30, 40)];
        assert!(!in_window(&w, 9));
        assert!(in_window(&w, 10));
        assert!(in_window(&w, 19));
        assert!(!in_window(&w, 20));
        assert!(in_window(&w, 35));
        assert!(!in_window(&w, 45));
    }
}
