//! Train/validation splitting (§6 of the paper).
//!
//! "We partition each trace in 80:20 ratio for training and validation" —
//! the split is *temporal*: the model trains on the early months and is
//! validated on the held-out later months, which is what makes the §6
//! results a generality test rather than in-sample fit.

use serde::{Deserialize, Serialize};

use crate::job::JobRecord;

/// A temporal partition of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSplit {
    /// Early portion, used for training.
    pub train: Vec<JobRecord>,
    /// Held-out later portion, used for validation.
    pub validation: Vec<JobRecord>,
    /// Boundary timestamp: jobs with `submit < split_time` train, the rest
    /// validate.
    pub split_time: i64,
}

/// Splits on the time axis: the training range covers the first
/// `train_fraction` of the trace's span. Input need not be sorted.
pub fn split_by_time(jobs: &[JobRecord], train_fraction: f64) -> TraceSplit {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction must be in [0,1]"
    );
    if jobs.is_empty() {
        return TraceSplit {
            train: Vec::new(),
            validation: Vec::new(),
            split_time: 0,
        };
    }
    let first = jobs.iter().map(|j| j.submit).min().unwrap();
    let last = jobs.iter().map(|j| j.submit).max().unwrap();
    let split_time = first + ((last - first) as f64 * train_fraction) as i64;
    partition_at(jobs, split_time)
}

/// Splits on the job-count axis: the first `train_fraction` of jobs (by
/// submit order) train. Useful when arrival volume is very uneven.
pub fn split_by_count(jobs: &[JobRecord], train_fraction: f64) -> TraceSplit {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction must be in [0,1]"
    );
    if jobs.is_empty() {
        return TraceSplit {
            train: Vec::new(),
            validation: Vec::new(),
            split_time: 0,
        };
    }
    let mut sorted: Vec<&JobRecord> = jobs.iter().collect();
    sorted.sort_by_key(|j| j.submit);
    let k = ((sorted.len() as f64) * train_fraction).round() as usize;
    let split_time = if k >= sorted.len() {
        sorted.last().unwrap().submit + 1
    } else {
        sorted[k].submit
    };
    partition_at(jobs, split_time)
}

fn partition_at(jobs: &[JobRecord], split_time: i64) -> TraceSplit {
    let mut train = Vec::new();
    let mut validation = Vec::new();
    for j in jobs {
        if j.submit < split_time {
            train.push(j.clone());
        } else {
            validation.push(j.clone());
        }
    }
    train.sort_by_key(|j| j.submit);
    validation.sort_by_key(|j| j.submit);
    TraceSplit {
        train,
        validation,
        split_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR;

    fn jobs(n: usize) -> Vec<JobRecord> {
        (0..n)
            .map(|i| {
                JobRecord::new(
                    i as u64,
                    format!("j{i}"),
                    1,
                    i as i64 * HOUR,
                    1,
                    HOUR,
                    HOUR / 2,
                )
            })
            .collect()
    }

    #[test]
    fn time_split_puts_early_jobs_in_train() {
        let js = jobs(10); // submits 0..9h, span 9h
        let s = split_by_time(&js, 0.8);
        assert_eq!(s.train.len() + s.validation.len(), 10);
        assert!(s.train.iter().all(|j| j.submit < s.split_time));
        assert!(s.validation.iter().all(|j| j.submit >= s.split_time));
        assert!(s.train.len() >= 7 && s.train.len() <= 9);
    }

    #[test]
    fn count_split_is_exact() {
        let js = jobs(10);
        let s = split_by_count(&js, 0.8);
        assert_eq!(s.train.len(), 8);
        assert_eq!(s.validation.len(), 2);
    }

    #[test]
    fn extreme_fractions() {
        let js = jobs(5);
        let all_train = split_by_count(&js, 1.0);
        assert_eq!(all_train.train.len(), 5);
        assert!(all_train.validation.is_empty());
        let all_val = split_by_count(&js, 0.0);
        assert!(all_val.train.is_empty());
        assert_eq!(all_val.validation.len(), 5);
    }

    #[test]
    fn empty_input() {
        let s = split_by_time(&[], 0.8);
        assert!(s.train.is_empty() && s.validation.is_empty());
    }

    #[test]
    fn outputs_are_sorted_by_submit() {
        let mut js = jobs(6);
        js.reverse();
        let s = split_by_time(&js, 0.5);
        for w in s.train.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
        for w in s.validation.windows(2) {
            assert!(w[0].submit <= w[1].submit);
        }
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn invalid_fraction_panics() {
        split_by_time(&jobs(3), 1.5);
    }
}
