//! Parsing real Slurm accounting dumps.
//!
//! The paper collects `JobID, JobName, UserID, SubmitTime, StartTime,
//! EndTime, Timelimit, NumNodes` from the Slurm database (§3). This module
//! parses the pipe-separated output of
//!
//! ```text
//! sacct -a -P -o JobID,JobName,UID,Submit,Start,End,Timelimit,NNodes
//! ```
//!
//! so a site with real traces can feed them to Mirage directly instead of
//! using the synthetic generator. Timestamps are ISO-8601 without zone
//! (`2021-02-03T04:05:06`, as sacct prints); `Timelimit` uses Slurm's
//! `[days-]HH:MM[:SS]` form. Unstarted/running records (`Unknown`,
//! `None`) yield `start = end = None`.

use crate::job::JobRecord;
use crate::time::{DAY, HOUR, MINUTE};

/// A parse failure with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Raw parsed row before epoch re-anchoring:
/// `(id, name, user, submit, start, end, timelimit, nodes)`.
type RawRow = (u64, String, u32, i64, Option<i64>, Option<i64>, i64, u32);

/// Parses a whole sacct dump. A header line (starting with `JobID`) is
/// skipped; sub-job step lines (`1234.batch`, `1234.0`) are ignored, as
/// the paper's analysis works on job-level records.
///
/// Timestamps are converted to seconds relative to the earliest submit in
/// the file (the trace epoch), matching the synthetic generator's clock.
pub fn parse_sacct(input: &str) -> Result<Vec<JobRecord>, ParseError> {
    let mut raw: Vec<RawRow> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("JobID") {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() < 8 {
            return Err(ParseError {
                line: lineno + 1,
                message: format!("expected 8 pipe-separated fields, got {}", fields.len()),
            });
        }
        if fields[0].contains('.') {
            continue; // job step (1234.batch), not a job
        }
        let err = |message: String| ParseError {
            line: lineno + 1,
            message,
        };
        let id: u64 = fields[0]
            .split('_')
            .next()
            .unwrap_or(fields[0])
            .parse()
            .map_err(|_| err(format!("bad JobID {:?}", fields[0])))?;
        let name = fields[1].to_string();
        let user: u32 = fields[2]
            .parse()
            .map_err(|_| err(format!("bad UID {:?}", fields[2])))?;
        let submit =
            parse_timestamp(fields[3]).ok_or_else(|| err(format!("bad Submit {:?}", fields[3])))?;
        let start = parse_optional_timestamp(fields[4]);
        let end = parse_optional_timestamp(fields[5]);
        let timelimit = parse_timelimit(fields[6])
            .ok_or_else(|| err(format!("bad Timelimit {:?}", fields[6])))?;
        let nodes: u32 = fields[7]
            .parse()
            .map_err(|_| err(format!("bad NNodes {:?}", fields[7])))?;
        raw.push((id, name, user, submit, start, end, timelimit, nodes));
    }
    let epoch = raw.iter().map(|r| r.3).min().unwrap_or(0);
    let jobs = raw
        .into_iter()
        .map(|(id, name, user, submit, start, end, timelimit, nodes)| {
            let runtime = match (start, end) {
                (Some(s), Some(e)) => (e - s).max(1),
                _ => timelimit, // still running / never started: assume limit
            };
            let mut j = JobRecord::new(id, name, user, submit - epoch, nodes, timelimit, runtime);
            j.start = start.map(|s| s - epoch);
            j.end = end.map(|e| e - epoch);
            j
        })
        .collect();
    Ok(jobs)
}

/// `2021-02-03T04:05:06` → Unix-ish seconds (proleptic, zone-less). Only
/// differences matter, so days are counted with a simple Gregorian rule.
fn parse_timestamp(s: &str) -> Option<i64> {
    let (date, time) = s.split_once('T')?;
    let mut dp = date.split('-');
    let year: i64 = dp.next()?.parse().ok()?;
    let month: u32 = dp.next()?.parse().ok()?;
    let day: i64 = dp.next()?.parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let mut tp = time.split(':');
    let h: i64 = tp.next()?.parse().ok()?;
    let m: i64 = tp.next()?.parse().ok()?;
    let sec: i64 = tp.next().unwrap_or("0").parse().ok()?;
    Some(days_from_epoch(year, month, day) * DAY + h * HOUR + m * MINUTE + sec)
}

fn parse_optional_timestamp(s: &str) -> Option<i64> {
    match s {
        "Unknown" | "None" | "" => None,
        _ => parse_timestamp(s),
    }
}

/// Days since 1970-01-01 (civil-from-days algorithm, Howard Hinnant).
fn days_from_epoch(y: i64, m: u32, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((m + 9) % 12);
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Slurm timelimit: `HH:MM`, `HH:MM:SS`, `D-HH:MM[:SS]`, `UNLIMITED`.
fn parse_timelimit(s: &str) -> Option<i64> {
    if s.eq_ignore_ascii_case("UNLIMITED") {
        return Some(365 * DAY);
    }
    let (days, rest) = match s.split_once('-') {
        Some((d, rest)) => (d.parse::<i64>().ok()?, rest),
        None => (0, s),
    };
    let parts: Vec<&str> = rest.split(':').collect();
    let (h, m, sec): (i64, i64, i64) = match parts.as_slice() {
        [h, m] => (h.parse().ok()?, m.parse().ok()?, 0),
        [h, m, s2] => (h.parse().ok()?, m.parse().ok()?, s2.parse().ok()?),
        _ => return None,
    };
    Some(days * DAY + h * HOUR + m * MINUTE + sec)
}

/// Serializes jobs back to the sacct pipe format (relative timestamps are
/// rendered from the epoch 2020-01-01). Round-trips with [`parse_sacct`]
/// up to timestamp re-anchoring.
pub fn to_sacct(jobs: &[JobRecord]) -> String {
    let mut out = String::from("JobID|JobName|UID|Submit|Start|End|Timelimit|NNodes\n");
    for j in jobs {
        let ts = |t: i64| format_timestamp(t + days_from_epoch(2020, 1, 1) * DAY);
        let opt = |t: Option<i64>| t.map(ts).unwrap_or_else(|| "Unknown".into());
        out.push_str(&format!(
            "{}|{}|{}|{}|{}|{}|{}|{}\n",
            j.id,
            j.name,
            j.user,
            ts(j.submit),
            opt(j.start),
            opt(j.end),
            format_timelimit(j.timelimit),
            j.nodes
        ));
    }
    out
}

fn format_timestamp(secs: i64) -> String {
    // civil-from-days inverse (Howard Hinnant).
    let z = secs.div_euclid(DAY) + 719_468;
    let tod = secs.rem_euclid(DAY);
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}",
        y,
        m,
        d,
        tod / HOUR,
        (tod % HOUR) / MINUTE,
        tod % MINUTE
    )
}

fn format_timelimit(secs: i64) -> String {
    let days = secs / DAY;
    let h = (secs % DAY) / HOUR;
    let m = (secs % HOUR) / MINUTE;
    let s = secs % MINUTE;
    if days > 0 {
        format!("{days}-{h:02}:{m:02}:{s:02}")
    } else {
        format!("{h:02}:{m:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
JobID|JobName|UID|Submit|Start|End|Timelimit|NNodes
1001|bert_pretrain_0|501|2021-02-01T10:00:00|2021-02-01T12:30:00|2021-02-03T12:30:00|2-00:00:00|8
1001.batch|batch|501|2021-02-01T10:00:00|2021-02-01T12:30:00|2021-02-03T12:30:00|2-00:00:00|8
1002|infer_svc|502|2021-02-01T11:00:00|Unknown|Unknown|12:00:00|1
1003|short|503|2021-02-01T11:30:00|2021-02-01T11:31:00|2021-02-01T11:31:25|01:00:00|1
";

    #[test]
    fn parses_jobs_and_skips_steps() {
        let jobs = parse_sacct(SAMPLE).unwrap();
        assert_eq!(jobs.len(), 3, "step line must be skipped");
        assert_eq!(jobs[0].id, 1001);
        assert_eq!(jobs[0].nodes, 8);
        assert_eq!(jobs[0].timelimit, 2 * DAY);
        assert_eq!(jobs[0].runtime, 2 * DAY);
    }

    #[test]
    fn timestamps_are_relative_to_earliest_submit() {
        let jobs = parse_sacct(SAMPLE).unwrap();
        assert_eq!(jobs[0].submit, 0, "earliest submit is the epoch");
        assert_eq!(jobs[1].submit, HOUR);
        assert_eq!(jobs[2].submit, HOUR + 30 * MINUTE);
        assert_eq!(jobs[0].start, Some(2 * HOUR + 30 * MINUTE));
    }

    #[test]
    fn pending_jobs_have_no_schedule() {
        let jobs = parse_sacct(SAMPLE).unwrap();
        assert_eq!(jobs[1].start, None);
        assert_eq!(jobs[1].end, None);
        // Runtime assumed at the limit for unstarted records.
        assert_eq!(jobs[1].runtime, 12 * HOUR);
    }

    #[test]
    fn short_job_runtime_from_start_end() {
        let jobs = parse_sacct(SAMPLE).unwrap();
        assert_eq!(jobs[2].runtime, 25);
        assert!(jobs[2].is_short());
    }

    #[test]
    fn timelimit_forms() {
        assert_eq!(parse_timelimit("12:00"), Some(12 * HOUR));
        assert_eq!(parse_timelimit("01:30:15"), Some(HOUR + 30 * MINUTE + 15));
        assert_eq!(parse_timelimit("2-00:00:00"), Some(2 * DAY));
        assert_eq!(parse_timelimit("UNLIMITED"), Some(365 * DAY));
        assert_eq!(parse_timelimit("nope"), None);
    }

    #[test]
    fn bad_lines_report_position() {
        let err = parse_sacct("1|a|x|2021-01-01T00:00:00|Unknown|Unknown|01:00|1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("UID"));
        let err = parse_sacct("1|a|5|bad|Unknown|Unknown|01:00|1\n").unwrap_err();
        assert!(err.message.contains("Submit"));
        let err = parse_sacct("only|three|fields\n").unwrap_err();
        assert!(err.message.contains("8 pipe-separated"));
    }

    #[test]
    fn array_job_ids_take_base() {
        let line = "77_3|arr|5|2021-01-01T00:00:00|Unknown|Unknown|01:00|1\n";
        let jobs = parse_sacct(line).unwrap();
        assert_eq!(jobs[0].id, 77);
    }

    #[test]
    fn roundtrip_through_to_sacct() {
        let jobs = parse_sacct(SAMPLE).unwrap();
        let text = to_sacct(&jobs);
        let again = parse_sacct(&text).unwrap();
        assert_eq!(jobs.len(), again.len());
        for (a, b) in jobs.iter().zip(&again) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.start, b.start);
            assert_eq!(a.timelimit, b.timelimit);
            assert_eq!(a.nodes, b.nodes);
        }
    }

    #[test]
    fn calendar_arithmetic_handles_leap_years() {
        // 2020-02-28 → 2020-03-01 is 2 days (2020 is a leap year).
        let a = parse_timestamp("2020-02-28T00:00:00").unwrap();
        let b = parse_timestamp("2020-03-01T00:00:00").unwrap();
        assert_eq!(b - a, 2 * DAY);
        // 2021 is not.
        let a = parse_timestamp("2021-02-28T00:00:00").unwrap();
        let b = parse_timestamp("2021-03-01T00:00:00").unwrap();
        assert_eq!(b - a, DAY);
    }
}
