//! Deterministic node-failure schedules: exponential MTBF/MTTR
//! crash/recovery processes on seed-split streams.
//!
//! Real GPU clusters lose nodes — ECC errors, NVLink flaps, host reboots —
//! and Mirage's low-interruption claim only means something if the learned
//! policies survive that. Each node draws an alternating sequence of
//! up-intervals (mean `mtbf`) and down-intervals (mean `mttr`) from its own
//! [`SeedSplitter`](crate::seed::SeedSplitter) stream, so the schedule is a
//! pure function of `(seed, nodes, mtbf, mttr, horizon)`: both simulators,
//! every evaluation method and every retry of a bench lane replay exactly
//! the same crash tape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::seed::SeedSplitter;

/// One node-level fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFaultEvent {
    /// Instant the transition fires.
    pub time: i64,
    /// Node index in `[0, nodes)`.
    pub node: u32,
    /// `true` = the node recovers, `false` = the node crashes.
    pub up: bool,
}

/// One exponential draw with the given mean, in whole seconds (≥ 1 so a
/// node never crashes and recovers in the same instant).
fn exp_seconds(rng: &mut StdRng, mean: i64) -> i64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    let draw = -(mean as f64) * (1.0 - u).ln();
    (draw.ceil() as i64).max(1)
}

/// Generates the full crash/recovery schedule for `nodes` nodes.
///
/// Crashes are drawn until `horizon`; every crash's matching recovery is
/// always emitted (possibly past the horizon), so no node stays down
/// forever. Events come back sorted by `(time, node, up)` — a total,
/// deterministic order the simulators can merge into their event loops.
pub fn fault_schedule(
    seed: u64,
    nodes: u32,
    mtbf: i64,
    mttr: i64,
    horizon: i64,
) -> Vec<NodeFaultEvent> {
    assert!(mtbf > 0, "fault schedules need a positive MTBF");
    let mttr = mttr.max(1);
    let mut splitter = SeedSplitter::new(seed);
    let mut events = Vec::new();
    for node in 0..nodes {
        let mut rng = StdRng::seed_from_u64(splitter.next_seed());
        let mut t = 0i64;
        loop {
            t += exp_seconds(&mut rng, mtbf);
            if t > horizon {
                break;
            }
            events.push(NodeFaultEvent {
                time: t,
                node,
                up: false,
            });
            t += exp_seconds(&mut rng, mttr);
            events.push(NodeFaultEvent {
                time: t,
                node,
                up: true,
            });
        }
    }
    events.sort_unstable_by_key(|e| (e.time, e.node, e.up));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DAY, HOUR};

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let a = fault_schedule(7, 8, DAY, 2 * HOUR, 30 * DAY);
        let b = fault_schedule(7, 8, DAY, 2 * HOUR, 30 * DAY);
        assert_eq!(a, b);
        let c = fault_schedule(8, 8, DAY, 2 * HOUR, 30 * DAY);
        assert_ne!(a, c, "different seeds, different tapes");
    }

    #[test]
    fn every_crash_has_a_later_recovery() {
        let events = fault_schedule(3, 4, 12 * HOUR, HOUR, 10 * DAY);
        for node in 0..4 {
            let mine: Vec<_> = events.iter().filter(|e| e.node == node).collect();
            // Strictly alternating, starting with a crash, ending recovered.
            assert_eq!(mine.len() % 2, 0, "unpaired transition on node {node}");
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.up, i % 2 == 1, "node {node} transition {i}");
                if i > 0 {
                    assert!(e.time > mine[i - 1].time, "zero-length interval");
                }
            }
        }
    }

    #[test]
    fn events_are_time_sorted_and_crashes_stay_inside_the_horizon() {
        let events = fault_schedule(11, 16, DAY, 4 * HOUR, 20 * DAY);
        assert!(!events.is_empty(), "16 nodes over 20 days must crash");
        for w in events.windows(2) {
            assert!((w[0].time, w[0].node) <= (w[1].time, w[1].node));
        }
        for e in &events {
            if !e.up {
                assert!(e.time <= 20 * DAY, "crash past the horizon");
            }
        }
    }

    #[test]
    fn interval_means_track_the_configured_mtbf() {
        // ~90 nodes over a long horizon: the empirical mean up-interval
        // should sit near the configured MTBF (law of large numbers on a
        // pinned seed, not a probabilistic test).
        let mtbf = DAY;
        let events = fault_schedule(42, 90, mtbf, HOUR, 60 * DAY);
        let mut gaps = Vec::new();
        for node in 0..90 {
            let mut last_up = 0i64;
            for e in events.iter().filter(|e| e.node == node) {
                if e.up {
                    last_up = e.time;
                } else {
                    gaps.push(e.time - last_up);
                }
            }
        }
        let mean = gaps.iter().sum::<i64>() as f64 / gaps.len() as f64;
        assert!(
            (mean - mtbf as f64).abs() < 0.15 * mtbf as f64,
            "empirical MTBF {mean} vs configured {mtbf}"
        );
    }
}
