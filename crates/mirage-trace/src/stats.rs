//! Trace statistics (§3.1 of the paper).
//!
//! Everything needed to regenerate Table 1 and Figures 1–4: monthly job
//! counts, queue-wait aggregates and distributions, and node-hour shares by
//! job size.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::job::JobRecord;
use crate::time::{month_of, HOUR};

/// Table 1 row: one cluster's trace in summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Cluster name.
    pub cluster: String,
    /// Node count of the production partition.
    pub node_count: u32,
    /// Trace span in months.
    pub months: u32,
    /// Jobs in the raw trace.
    pub original_jobs: usize,
    /// Jobs after the §3.2 cleaning pipeline.
    pub filtered_jobs: usize,
}

/// Queue-wait distribution bucket edges used throughout the paper's Fig 4
/// narrative: `<2h, 2–12h, 12–24h, 24–36h, >36h`.
pub const WAIT_BUCKET_EDGES: [i64; 4] = [2 * HOUR, 12 * HOUR, 24 * HOUR, 36 * HOUR];

/// Human labels matching [`WAIT_BUCKET_EDGES`].
pub const WAIT_BUCKET_LABELS: [&str; 5] = ["<2h", "2-12h", "12-24h", "24-36h", ">36h"];

/// Job-size classes used for the Fig 3 node-hour breakdown.
pub const SIZE_CLASS_LABELS: [&str; 4] = ["1 node", "2-4 nodes", "5-8 nodes", ">8 nodes"];

/// Jobs submitted in each synthetic month (Fig 2 series).
pub fn monthly_job_counts(jobs: &[JobRecord]) -> BTreeMap<i64, usize> {
    let mut m = BTreeMap::new();
    for j in jobs {
        *m.entry(month_of(j.submit)).or_insert(0) += 1;
    }
    m
}

/// Mean and standard deviation of the monthly job count, as quoted in §3.1
/// (e.g. "2,955 ± 1,289 per month" on V100).
pub fn monthly_count_mean_std(jobs: &[JobRecord]) -> (f64, f64) {
    let counts = monthly_job_counts(jobs);
    if counts.is_empty() {
        return (0.0, 0.0);
    }
    let n = counts.len() as f64;
    let mean = counts.values().map(|&c| c as f64).sum::<f64>() / n;
    let var = counts
        .values()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    (mean, var.sqrt())
}

/// Average queue wait per month (Fig 1 series), in seconds. Jobs without a
/// recorded start are skipped.
pub fn monthly_avg_wait(jobs: &[JobRecord]) -> BTreeMap<i64, f64> {
    let mut sums: BTreeMap<i64, (f64, usize)> = BTreeMap::new();
    for j in jobs {
        if let Some(w) = j.wait() {
            let e = sums.entry(month_of(j.submit)).or_insert((0.0, 0));
            e.0 += w as f64;
            e.1 += 1;
        }
    }
    sums.into_iter()
        .map(|(m, (s, n))| (m, s / n as f64))
        .collect()
}

/// Fraction of (scheduled) jobs falling into each wait bucket defined by
/// `edges` (producing `edges.len() + 1` buckets).
pub fn wait_distribution(jobs: &[JobRecord], edges: &[i64]) -> Vec<f64> {
    let mut counts = vec![0usize; edges.len() + 1];
    let mut total = 0usize;
    for j in jobs {
        if let Some(w) = j.wait() {
            let b = edges.partition_point(|&e| e <= w);
            counts[b] += 1;
            total += 1;
        }
    }
    if total == 0 {
        return vec![0.0; edges.len() + 1];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Per-month wait distributions (Fig 4 series).
pub fn monthly_wait_distribution(jobs: &[JobRecord], edges: &[i64]) -> BTreeMap<i64, Vec<f64>> {
    let mut by_month: BTreeMap<i64, Vec<JobRecord>> = BTreeMap::new();
    for j in jobs {
        if j.start.is_some() {
            by_month
                .entry(month_of(j.submit))
                .or_default()
                .push(j.clone());
        }
    }
    by_month
        .into_iter()
        .map(|(m, js)| (m, wait_distribution(&js, edges)))
        .collect()
}

/// Classifies a node count into the Fig 3 size classes.
#[inline]
pub fn size_class(nodes: u32) -> usize {
    match nodes {
        0..=1 => 0,
        2..=4 => 1,
        5..=8 => 2,
        _ => 3,
    }
}

/// Share of total node-hours consumed by each size class (Fig 3 bars).
pub fn node_hour_shares(jobs: &[JobRecord]) -> [f64; 4] {
    let mut hours = [0.0f64; 4];
    for j in jobs {
        hours[size_class(j.nodes)] += j.node_hours();
    }
    let total: f64 = hours.iter().sum();
    if total > 0.0 {
        for h in &mut hours {
            *h /= total;
        }
    }
    hours
}

/// Share of the *job count* in each size class, for the Fig 3 contrast
/// between job share and node-hour share.
pub fn job_count_shares(jobs: &[JobRecord]) -> [f64; 4] {
    let mut counts = [0usize; 4];
    for j in jobs {
        counts[size_class(j.nodes)] += 1;
    }
    let total: usize = counts.iter().sum();
    let mut out = [0.0f64; 4];
    if total > 0 {
        for (o, &c) in out.iter_mut().zip(&counts) {
            *o = c as f64 / total as f64;
        }
    }
    out
}

/// §3.1 observation: multi-node jobs are a small share of jobs but a large
/// share of node-hours. Returns `(multi_node_job_fraction,
/// multi_node_node_hour_fraction)`.
pub fn multi_node_shares(jobs: &[JobRecord]) -> (f64, f64) {
    if jobs.is_empty() {
        return (0.0, 0.0);
    }
    let multi_jobs = jobs.iter().filter(|j| j.is_multi_node()).count();
    let multi_hours: f64 = jobs
        .iter()
        .filter(|j| j.is_multi_node())
        .map(|j| j.node_hours())
        .sum();
    let total_hours: f64 = jobs.iter().map(|j| j.node_hours()).sum();
    (
        multi_jobs as f64 / jobs.len() as f64,
        if total_hours > 0.0 {
            multi_hours / total_hours
        } else {
            0.0
        },
    )
}

/// Mean queue wait over all scheduled jobs, seconds.
pub fn avg_wait(jobs: &[JobRecord]) -> f64 {
    let waits: Vec<f64> = jobs
        .iter()
        .filter_map(|j| j.wait())
        .map(|w| w as f64)
        .collect();
    if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    }
}

/// Percentile of queue waits (p ∈ \[0,100\]); 0 when nothing is scheduled.
pub fn wait_percentile(jobs: &[JobRecord], p: f64) -> f64 {
    let mut waits: Vec<f64> = jobs
        .iter()
        .filter_map(|j| j.wait())
        .map(|w| w as f64)
        .collect();
    if waits.is_empty() {
        return 0.0;
    }
    waits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p / 100.0) * (waits.len() - 1) as f64).round() as usize;
    waits[idx.min(waits.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{DAY, MONTH};

    fn scheduled(id: u64, submit: i64, wait: i64, nodes: u32, runtime: i64) -> JobRecord {
        let mut j = JobRecord::new(id, format!("j{id}"), 1, submit, nodes, 2 * runtime, runtime);
        j.complete_at(submit + wait);
        j
    }

    #[test]
    fn monthly_counts_bucket_correctly() {
        let jobs = vec![
            scheduled(1, 0, 10, 1, HOUR),
            scheduled(2, MONTH - 1, 10, 1, HOUR),
            scheduled(3, MONTH, 10, 1, HOUR),
        ];
        let c = monthly_job_counts(&jobs);
        assert_eq!(c[&0], 2);
        assert_eq!(c[&1], 1);
    }

    #[test]
    fn mean_std_of_monthly_counts() {
        let jobs = vec![
            scheduled(1, 0, 0, 1, HOUR),
            scheduled(2, 1, 0, 1, HOUR),
            scheduled(3, MONTH, 0, 1, HOUR),
        ];
        let (mean, std) = monthly_count_mean_std(&jobs);
        assert!((mean - 1.5).abs() < 1e-9);
        assert!((std - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wait_distribution_fractions_sum_to_one() {
        let jobs = vec![
            scheduled(1, 0, HOUR, 1, HOUR),      // <2h
            scheduled(2, 0, 5 * HOUR, 1, HOUR),  // 2-12h
            scheduled(3, 0, 30 * HOUR, 1, HOUR), // 24-36h
            scheduled(4, 0, 2 * DAY, 1, HOUR),   // >36h
        ];
        let d = wait_distribution(&jobs, &WAIT_BUCKET_EDGES);
        assert_eq!(d.len(), 5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((d[0] - 0.25).abs() < 1e-9);
        assert!((d[3] - 0.25).abs() < 1e-9);
        assert!((d[4] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn unscheduled_jobs_are_skipped_in_wait_stats() {
        let mut pending = JobRecord::new(9, "p", 1, 0, 1, HOUR, HOUR);
        pending.start = None;
        let jobs = vec![pending, scheduled(1, 0, HOUR, 1, HOUR)];
        assert!((avg_wait(&jobs) - HOUR as f64).abs() < 1e-9);
        let d = wait_distribution(&jobs, &WAIT_BUCKET_EDGES);
        assert!((d[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn size_classes_partition_sizes() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(4), 1);
        assert_eq!(size_class(5), 2);
        assert_eq!(size_class(8), 2);
        assert_eq!(size_class(9), 3);
        assert_eq!(size_class(32), 3);
    }

    #[test]
    fn node_hour_shares_favor_big_long_jobs() {
        let jobs = vec![
            scheduled(1, 0, 0, 1, HOUR),
            scheduled(2, 0, 0, 8, 10 * HOUR),
        ];
        let shares = node_hour_shares(&jobs);
        assert!(shares[2] > 0.9, "8-node job should dominate node-hours");
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_node_shares_reproduce_the_sec31_contrast() {
        // 1 of 4 jobs is multi-node (25 %) but consumes most node-hours.
        let jobs = vec![
            scheduled(1, 0, 0, 1, HOUR),
            scheduled(2, 0, 0, 1, HOUR),
            scheduled(3, 0, 0, 1, HOUR),
            scheduled(4, 0, 0, 16, 20 * HOUR),
        ];
        let (job_frac, hour_frac) = multi_node_shares(&jobs);
        assert!((job_frac - 0.25).abs() < 1e-9);
        assert!(hour_frac > 0.9);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let jobs: Vec<_> = (0..100)
            .map(|i| scheduled(i, 0, i as i64 * 60, 1, HOUR))
            .collect();
        assert!((wait_percentile(&jobs, 0.0) - 0.0).abs() < 1e-9);
        assert!((wait_percentile(&jobs, 100.0) - 99.0 * 60.0).abs() < 1e-9);
        let med = wait_percentile(&jobs, 50.0);
        assert!((45.0 * 60.0..=55.0 * 60.0).contains(&med));
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        assert_eq!(avg_wait(&[]), 0.0);
        assert_eq!(wait_percentile(&[], 50.0), 0.0);
        assert_eq!(multi_node_shares(&[]), (0.0, 0.0));
        assert_eq!(node_hour_shares(&[]), [0.0; 4]);
        assert!(monthly_avg_wait(&[]).is_empty());
    }
}
