//! Time constants and helpers.
//!
//! All timestamps in the workspace are `i64` seconds relative to the trace
//! epoch (the instant the trace begins). Synthetic months are fixed 30-day
//! windows, which keeps month bucketing deterministic and avoids calendar
//! arithmetic the paper's analysis does not depend on.

/// One minute in seconds.
pub const MINUTE: i64 = 60;
/// One hour in seconds.
pub const HOUR: i64 = 60 * MINUTE;
/// One day in seconds.
pub const DAY: i64 = 24 * HOUR;
/// One week in seconds.
pub const WEEK: i64 = 7 * DAY;
/// One synthetic month (30 days) in seconds.
pub const MONTH: i64 = 30 * DAY;

/// Index of the synthetic month containing `t` (month 0 starts at the epoch).
///
/// Negative timestamps (before the epoch) land in negative month indices via
/// euclidean division so the mapping stays monotone.
#[inline]
pub fn month_of(t: i64) -> i64 {
    t.div_euclid(MONTH)
}

/// Seconds elapsed since the start of the day containing `t`.
#[inline]
pub fn time_of_day(t: i64) -> i64 {
    t.rem_euclid(DAY)
}

/// Day-of-week index in `0..7` (day 0 is the epoch's weekday).
#[inline]
pub fn day_of_week(t: i64) -> i64 {
    t.div_euclid(DAY).rem_euclid(7)
}

/// Formats a duration in seconds as a compact human string, e.g. `"36h"`,
/// `"2d3h"`, `"45m"`. Used by the benchmark harness when printing rows.
pub fn fmt_duration(secs: i64) -> String {
    let neg = secs < 0;
    let s = secs.abs();
    let body = if s >= DAY {
        let d = s / DAY;
        let h = (s % DAY) / HOUR;
        if h == 0 {
            format!("{d}d")
        } else {
            format!("{d}d{h}h")
        }
    } else if s >= HOUR {
        let h = s / HOUR;
        let m = (s % HOUR) / MINUTE;
        if m == 0 {
            format!("{h}h")
        } else {
            format!("{h}h{m:02}m")
        }
    } else if s >= MINUTE {
        format!("{}m", s / MINUTE)
    } else {
        format!("{s}s")
    };
    if neg {
        format!("-{body}")
    } else {
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_bucketing_is_monotone() {
        assert_eq!(month_of(0), 0);
        assert_eq!(month_of(MONTH - 1), 0);
        assert_eq!(month_of(MONTH), 1);
        assert_eq!(month_of(-1), -1);
    }

    #[test]
    fn time_of_day_wraps() {
        assert_eq!(time_of_day(0), 0);
        assert_eq!(time_of_day(DAY + 5), 5);
        assert_eq!(time_of_day(-1), DAY - 1);
    }

    #[test]
    fn day_of_week_cycles() {
        assert_eq!(day_of_week(0), 0);
        assert_eq!(day_of_week(6 * DAY), 6);
        assert_eq!(day_of_week(7 * DAY), 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(30), "30s");
        assert_eq!(fmt_duration(90), "1m");
        assert_eq!(fmt_duration(HOUR), "1h");
        assert_eq!(fmt_duration(HOUR + 30 * MINUTE), "1h30m");
        assert_eq!(fmt_duration(2 * DAY + 3 * HOUR), "2d3h");
        assert_eq!(fmt_duration(-HOUR), "-1h");
    }
}
