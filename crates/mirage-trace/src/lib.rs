//! Job-trace substrate for the Mirage reproduction.
//!
//! The paper trains and evaluates on production job traces from three TACC
//! GPU clusters (V100 / RTX / A100). Those traces are not public, so this
//! crate provides:
//!
//! * a [`JobRecord`] model mirroring the fields the paper collects
//!   (`JobID, JobName, UserID, SubmitTime, StartTime, EndTime, Timelimit,
//!   NumNodes`),
//! * [`ClusterProfile`]s for the three clusters with the published
//!   statistics (node counts, job volumes, size mix, short-job spike),
//! * a seeded synthetic workload generator ([`synth`]) calibrated against
//!   Table 1 and Figures 1–4 of the paper,
//! * the §3.2 cleaning pipeline ([`clean`]): over-sized-job filtering and
//!   sub-job merging,
//! * trace statistics ([`stats`]) used to regenerate Table 1 and
//!   Figures 1–4, and
//! * the 80:20 train/validation time split ([`split`]) used throughout §6.

pub mod clean;
pub mod cluster;
pub mod faults;
pub mod job;
pub mod parse;
pub mod seed;
pub mod split;
pub mod stats;
pub mod synth;
pub mod time;
pub mod traffic;

pub use clean::{clean_trace, CleanReport};
pub use cluster::{ClusterProfile, PoolSpec};
pub use faults::{fault_schedule, NodeFaultEvent};
pub use job::{JobRecord, PoolRequest};
pub use parse::{parse_sacct, to_sacct, ParseError};
pub use seed::{split_seed, splitmix64, SeedSplitter};
pub use split::{split_by_count, split_by_time, TraceSplit};
pub use stats::TraceSummary;
pub use synth::{service_generators, SynthConfig, TraceGenerator};
pub use time::{DAY, HOUR, MINUTE, MONTH, WEEK};
pub use traffic::{GammaBurst, TrafficModel};
