//! Deterministic seed splitting: independent, reproducible RNG streams
//! derived from one master seed.
//!
//! Multi-service scenarios give every service its own `TraceGenerator`
//! and traffic stream. Deriving those seeds as `master + i` (or
//! `master ^ i`) produces *correlated* generators — `StdRng` seeded from
//! nearby integers is fine, but the workspace also mixes seeds into
//! sub-streams (per-burst, per-lane) where low-entropy offsets collide.
//! [`split_seed`] runs the combined `(master, stream)` pair through a
//! SplitMix64 finalizer, so every stream index lands in an uncorrelated
//! region of the seed space and the mapping is stable across runs,
//! platforms and batch widths.

/// The SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word
/// (Steele, Lea & Flood's `splitmix64`, the standard seed expander).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the seed of sub-stream `stream` from `master`.
///
/// Deterministic and collision-avoiding: distinct `(master, stream)`
/// pairs mix through [`splitmix64`] with the golden-ratio increment, so
/// `split_seed(s, 0), split_seed(s, 1), …` behave as independent seeds
/// (no shared low bits, no lockstep correlation between the derived
/// `StdRng` streams).
#[inline]
pub fn split_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Iterator-style splitter: hands out `split_seed(master, 0..)` in order.
///
/// ```
/// use mirage_trace::seed::{split_seed, SeedSplitter};
/// let mut sp = SeedSplitter::new(7);
/// assert_eq!(sp.next_seed(), split_seed(7, 0));
/// assert_eq!(sp.next_seed(), split_seed(7, 1));
/// ```
#[derive(Debug, Clone)]
pub struct SeedSplitter {
    master: u64,
    next: u64,
}

impl SeedSplitter {
    /// Splitter over `master`'s sub-streams, starting at stream 0.
    pub fn new(master: u64) -> Self {
        Self { master, next: 0 }
    }

    /// The next derived seed (streams are handed out sequentially).
    pub fn next_seed(&mut self) -> u64 {
        let s = split_seed(self.master, self.next);
        self.next += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_deterministic() {
        assert_eq!(split_seed(42, 3), split_seed(42, 3));
        let mut a = SeedSplitter::new(42);
        let mut b = SeedSplitter::new(42);
        for _ in 0..8 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn streams_differ_from_each_other_and_from_master() {
        let seeds: Vec<u64> = (0..32).map(|i| split_seed(5, i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_ne!(a, 5, "stream {i} echoed the master seed");
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "two streams collided");
            }
        }
    }

    #[test]
    fn masters_do_not_alias_across_streams() {
        // The classic failure mode of additive derivation:
        // master 5 / stream 1 aliasing master 6 / stream 0.
        assert_ne!(split_seed(5, 1), split_seed(6, 0));
        assert_ne!(split_seed(5, 2), split_seed(7, 0));
    }

    #[test]
    fn splitmix_avalanches_single_bit_flips() {
        // Flipping one input bit must flip roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((20..=44).contains(&flipped), "weak avalanche: {flipped}");
    }
}
