//! Property-based tests for trace generation, cleaning and statistics.

use mirage_trace::stats::{node_hour_shares, wait_distribution};
use mirage_trace::{
    clean_trace, split_by_time, ClusterProfile, JobRecord, SynthConfig, TraceGenerator,
};
use proptest::prelude::*;

fn small_trace(seed: u64, months: u32, scale: f64) -> (ClusterProfile, Vec<JobRecord>) {
    let profile = ClusterProfile::v100().scaled(scale);
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(months);
    (profile, TraceGenerator::new(cfg).generate())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated job is well-formed for any seed.
    #[test]
    fn generated_jobs_are_well_formed(seed in 0u64..10_000, months in 1u32..3) {
        let (_, jobs) = small_trace(seed, months, 0.25);
        prop_assert!(!jobs.is_empty());
        for j in &jobs {
            prop_assert!(j.runtime > 0);
            prop_assert!(j.runtime <= j.timelimit, "job {} over limit", j.id);
            prop_assert!(j.submit >= 0);
            prop_assert!(j.nodes >= 1);
            prop_assert!(j.start.is_none() && j.end.is_none());
        }
        // Sorted with sequential ids.
        for w in jobs.windows(2) {
            prop_assert!(w[0].submit <= w[1].submit);
            prop_assert_eq!(w[0].id + 1, w[1].id);
        }
    }

    /// Cleaning is idempotent: a second pass changes nothing.
    #[test]
    fn cleaning_is_idempotent(seed in 0u64..5_000) {
        let (profile, jobs) = small_trace(seed, 2, 0.25);
        let (once, r1) = clean_trace(&jobs, profile.nodes);
        let (twice, r2) = clean_trace(&once, profile.nodes);
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(r2.oversized_removed, 0);
        prop_assert!(r1.filtered <= r1.original);
    }

    /// Cleaning preserves total consumed node-seconds minus removals.
    #[test]
    fn cleaning_conserves_runtime_of_kept_jobs(seed in 0u64..5_000) {
        let (profile, jobs) = small_trace(seed, 2, 0.25);
        let kept_ns: f64 = jobs
            .iter()
            .filter(|j| j.nodes <= profile.nodes)
            .map(|j| j.runtime as f64)
            .sum();
        let (clean, _) = clean_trace(&jobs, profile.nodes);
        let clean_ns: f64 = clean.iter().map(|j| j.runtime as f64).sum();
        // Merging sums runtimes; only over-sized removal may drop time.
        prop_assert!((clean_ns - kept_ns).abs() < 1e-6 * kept_ns.max(1.0));
    }

    /// A time split partitions the trace exactly.
    #[test]
    fn split_partitions_exactly(seed in 0u64..5_000, frac in 0.1f64..0.9) {
        let (_, jobs) = small_trace(seed, 2, 0.2);
        let split = split_by_time(&jobs, frac);
        prop_assert_eq!(split.train.len() + split.validation.len(), jobs.len());
        for j in &split.train {
            prop_assert!(j.submit < split.split_time);
        }
        for j in &split.validation {
            prop_assert!(j.submit >= split.split_time);
        }
    }

    /// Distribution helpers always produce normalized outputs.
    #[test]
    fn stats_are_normalized(seed in 0u64..5_000) {
        let (profile, mut jobs) = small_trace(seed, 1, 0.2);
        // Give every job a synthetic schedule so wait stats apply.
        for (i, j) in jobs.iter_mut().enumerate() {
            j.complete_at(j.submit + (i as i64 % 7) * 3600);
        }
        let shares = node_hour_shares(&jobs);
        prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let dist = wait_distribution(&jobs, &[3600, 7200]);
        prop_assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let _ = profile;
    }
}
