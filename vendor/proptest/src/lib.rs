//! Vendored, dependency-free mini `proptest`.
//!
//! The build environment has no crates registry, so this crate implements
//! the subset of proptest the workspace's property tests use:
//!
//! * [`Strategy`] with `prop_map`, implemented for numeric ranges, tuples
//!   of strategies, [`Just`] and [`prop::collection::vec`],
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`ProptestConfig::with_cases`].
//!
//! There is no shrinking: a failing case reports its values via the
//! assertion message and panics. Case generation is deterministic per test
//! (seeded from the test's name), so failures reproduce exactly.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// A generator of arbitrary values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one arbitrary value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
}

/// Namespaced strategy constructors (mirrors `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Strategy producing `Vec`s whose elements come from `element`
        /// and whose length is drawn from `size` (a `usize` or a range).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Length specification for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test seed (FNV-1a over the test's name).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fresh case generator for one test run.
pub fn test_rng(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_from_name(name))
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __proptest_config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::test_rng(stringify!($name));
                for __proptest_case in 0..__proptest_config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    let __proptest_result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = __proptest_result {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __proptest_case + 1,
                            __proptest_config.cases,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Like `assert!`, but reports the failing case instead of panicking
/// mid-closure (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Like `assert_eq!`, for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?}; {}) at {}:{}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+),
                file!(), line!()
            ));
        }
    }};
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u32, i64)> {
        (1u32..=8, -50i64..50)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0i64..100, f in -1.0f32..1.0) {
            prop_assert!((0..100).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u32..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            for x in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn mapped_tuples_compose(p in pair_strategy().prop_map(|(a, b)| (b, a))) {
            let (b, a) = p;
            prop_assert!((1..=8).contains(&a), "a = {a}");
            prop_assert!((-50..50).contains(&b));
            prop_assert_eq!(a, a);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Config override applies (smoke: the block itself must expand).
        #[test]
        fn fixed_sizes_and_just(v in prop::collection::vec(Just(7u8), 4)) {
            prop_assert_eq!(v, vec![7u8; 4]);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::seed_from_name("a"), super::seed_from_name("b"));
        assert_eq!(super::seed_from_name("a"), super::seed_from_name("a"));
    }
}
