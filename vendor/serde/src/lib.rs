//! Vendored, dependency-free stand-in for `serde`.
//!
//! The workspace annotates many types with `#[derive(Serialize,
//! Deserialize)]` but performs no generic serde-based serialization (the
//! one JSON checkpoint path in `mirage-nn` writes its format by hand). So
//! this crate provides the two trait names as blanket-implemented markers
//! and re-exports no-op derive macros: every `T: Serialize` bound holds,
//! every derive compiles, and nothing is generated.

/// Marker for serializable types; blanket-implemented for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types; blanket-implemented for every type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization alias, as in real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
