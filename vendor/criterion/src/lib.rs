//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Implements the benchmarking entry points the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! mean-over-samples timer instead of criterion's statistical machinery.
//! Results print as `<group>/<name>  mean <t> (N samples)`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How setup outputs are batched in [`Bencher::iter_batched`]; all modes
/// behave identically here (one setup per timed call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times one benchmark's closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    timed_runs: usize,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            total: Duration::ZERO,
            timed_runs: 0,
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up run.
        black_box(routine());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.total += t.elapsed();
            self.timed_runs += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.timed_runs += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.timed_runs == 0 {
            Duration::ZERO
        } else {
            self.total / self.timed_runs as u32
        }
    }
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        println!(
            "{}/{:<32} mean {:>12.3?}  ({} samples)",
            self.name,
            id,
            b.mean(),
            b.timed_runs
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_samples,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_and_times() {
        benches();
        let mut b = Bencher::new(4);
        b.iter(|| 1 + 1);
        assert_eq!(b.timed_runs, 4);
        assert!(b.mean() < Duration::from_secs(1));
    }
}
