//! Vendored, dependency-free stand-in for the `rand_distr` crate.
//!
//! Implements the distributions this workspace samples — [`Normal`],
//! [`LogNormal`], [`Exp`] and [`StandardNormal`] — over `f32`/`f64`,
//! against the vendored `rand` crate's [`Distribution`] trait.

use rand::Rng;

pub use rand::distributions::Distribution;

/// Floating-point scalars the distributions are generic over.
pub trait Float: Copy + PartialOrd {
    /// Converts from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Converts to `f64`.
    fn to_f64(self) -> f64;
}

impl Float for f64 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

impl Float for f32 {
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

/// Invalid-parameter errors, shared by all constructors here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// A scale/rate parameter was zero, negative, or non-finite.
    BadParam,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for ParamError {}

/// One standard-normal draw via Box–Muller (no state between calls).
#[inline]
fn standard_normal_f64<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue; // ln(0) guard
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl<F: Float> Distribution<F> for StandardNormal {
    #[inline]
    fn sample<R: Rng>(&self, rng: &mut R) -> F {
        F::from_f64(standard_normal_f64(rng))
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    /// Creates `N(mean, std_dev²)`; `std_dev` must be finite and `>= 0`.
    pub fn new(mean: F, std_dev: F) -> Result<Self, ParamError> {
        let sd = std_dev.to_f64();
        if !sd.is_finite() || sd < 0.0 {
            return Err(ParamError::BadParam);
        }
        Ok(Self { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    #[inline]
    fn sample<R: Rng>(&self, rng: &mut R) -> F {
        let z = standard_normal_f64(rng);
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal<F: Float> {
    norm: Normal<F>,
}

impl<F: Float> LogNormal<F> {
    /// Creates `exp(N(mu, sigma²))`; `sigma` must be finite and `>= 0`.
    pub fn new(mu: F, sigma: F) -> Result<Self, ParamError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl<F: Float> Distribution<F> for LogNormal<F> {
    #[inline]
    fn sample<R: Rng>(&self, rng: &mut R) -> F {
        F::from_f64(self.norm.sample::<R>(rng).to_f64().exp())
    }
}

/// The exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp<F: Float> {
    lambda: F,
}

impl<F: Float> Exp<F> {
    /// Creates `Exp(lambda)`; `lambda` must be finite and `> 0`.
    pub fn new(lambda: F) -> Result<Self, ParamError> {
        let l = lambda.to_f64();
        if !l.is_finite() || l <= 0.0 {
            return Err(ParamError::BadParam);
        }
        Ok(Self { lambda })
    }
}

impl<F: Float> Distribution<F> for Exp<F> {
    #[inline]
    fn sample<R: Rng>(&self, rng: &mut R) -> F {
        let u: f64 = rng.gen();
        // Inverse CDF; 1 - u in (0, 1] avoids ln(0).
        F::from_f64(-(1.0 - u).ln() / self.lambda.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0f64, 2.0).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = Exp::new(0.25f64).unwrap();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, _) = moments(&xs);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = LogNormal::new(1.0f64, 0.5).unwrap();
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn invalid_params_are_rejected() {
        assert!(Exp::new(0.0f64).is_err());
        assert!(Exp::new(-1.0f32).is_err());
        assert!(Normal::new(0.0f32, -1.0).is_err());
    }

    #[test]
    fn f32_sampling_compiles_and_is_finite() {
        let mut rng = StdRng::seed_from_u64(14);
        let d = Normal::new(0.0f32, 0.3).unwrap();
        for _ in 0..100 {
            let x: f32 = d.sample(&mut rng);
            assert!(x.is_finite());
        }
        let e: f64 = StandardNormal.sample(&mut rng);
        assert!(e.is_finite());
    }
}
