//! Vendored, dependency-free stand-in for `rayon`.
//!
//! The build environment has no crates registry, so this crate maps the
//! parallel-iterator entry points the workspace uses (`par_iter`,
//! `into_par_iter`, `par_chunks`, `par_chunks_mut`) onto plain sequential
//! `std` iterators. Downstream code keeps compiling unchanged and stays
//! deterministic; genuine multi-threaded fan-out in this workspace is
//! provided by `mirage-sim`'s `BackendPool` (std::thread based) instead.

/// Rayon-style conversion into a (here: sequential) iterator.
pub trait IntoParallelIterator {
    /// Iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Converts `self` into the iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    #[inline]
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Rayon-style `par_iter` over shared references.
pub trait IntoParallelRefIterator<'a> {
    /// Iterator type produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: 'a;
    /// Iterates over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    #[inline]
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;

    #[inline]
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// Rayon-style chunked iteration over shared slices.
pub trait ParallelSlice<T> {
    /// Chunks of at most `chunk_size` elements.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Rayon-style chunked iteration over mutable slices.
pub trait ParallelSliceMut<T> {
    /// Mutable chunks of at most `chunk_size` elements.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Everything a `use rayon::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn chunked_views_cover_the_slice() {
        let mut buf = [0u8; 10];
        for (i, chunk) in buf.par_chunks_mut(3).enumerate() {
            for b in chunk {
                *b = i as u8;
            }
        }
        assert_eq!(buf, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        let counts: Vec<usize> = buf.par_chunks(4).map(<[u8]>::len).collect();
        assert_eq!(counts, vec![4, 4, 2]);
    }
}
