//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this crate
//! re-implements exactly the API surface the workspace uses: a seedable
//! [`rngs::StdRng`] (xoshiro256++), the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits with `gen`, `gen_range` and `gen_bool`, the
//! [`distributions::Distribution`] trait, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is *not* bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12); every consumer in this workspace only relies on seeded
//! determinism and uniformity, not on specific streams.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values drawable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; `lo <= hi` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level random-value methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Draws from an explicit distribution.
    #[inline]
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution abstraction (mirrors `rand::distributions`).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        #[inline]
        fn sample<R: Rng>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Seedable deterministic generator (xoshiro256++ under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would lock xoshiro at zero; splitmix64 cannot
            // produce four zeros from one seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a stream
        /// mid-flight. Round-trips through [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact point in its stream from a
        /// [`StdRng::state`] snapshot. An all-zero state would lock
        /// xoshiro at zero (and can never be observed from a seeded
        /// generator), so it is re-seeded like `seed_from_u64(0)` would be.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return Self {
                    s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0],
                };
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero guard never yields a stuck generator. (The first
        // two outputs of the guard state happen to coincide, so look at
        // a short window rather than one pair.)
        let mut z = StdRng::from_state([0, 0, 0, 0]);
        let draws: Vec<u64> = (0..8).map(|_| z.gen::<u64>()).collect();
        assert!(draws.iter().any(|&d| d != draws[0]));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&y));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
