//! No-op derive macros for the vendored `serde` stand-in.
//!
//! The vendored `serde` crate blanket-implements its `Serialize` and
//! `Deserialize` marker traits for every type, so these derives only need
//! to *accept* the derive syntax (including `#[serde(...)]` helper
//! attributes) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]`; the trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]`; the trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
