//! Multi-node distributed training: §6.2's scenario.
//!
//! An 8-node BERT-style pre-training run is chained as 48-hour sub-jobs.
//! Wide allocations queue much longer than single nodes, so proactive
//! provisioning matters more. This example compares the two heuristics and
//! the random-forest predictor on the same congested episodes.
//!
//! ```sh
//! cargo run --release --example multi_node_training
//! ```

use mirage::core::episode::EpisodeConfig;
use mirage::core::eval::{evaluate, EvalConfig, LoadLevel};
use mirage::core::train::{
    collect_offline, sample_training_starts, train_method, MethodKind, TrainConfig,
};
use mirage::core::ProvisionPolicy;
use mirage::prelude::*;

fn main() {
    let profile = ClusterProfile::v100().scaled(0.5);
    let mut scfg = SynthConfig::new(profile.clone(), 11);
    scfg.months = Some(6);
    let raw = TraceGenerator::new(scfg).generate();
    let (jobs, _) = clean_trace(&raw, profile.nodes);
    let split = split_by_time(&jobs, 0.8);
    let train_range = (jobs.first().unwrap().submit, split.split_time);
    let val_range = (split.split_time, jobs.last().unwrap().submit);

    let tcfg = TrainConfig {
        episode: EpisodeConfig {
            pair_nodes: 4, // 8 nodes on the full-size cluster ≙ 4 on the half-size one
            ..EpisodeConfig::default()
        },
        offline_episodes: 12,
        ..TrainConfig::default()
    };

    println!("collecting offline episodes and training the forest ...");
    let starts = sample_training_starts(
        &jobs,
        profile.nodes,
        train_range.0,
        train_range.1,
        &tcfg.episode,
        tcfg.offline_episodes,
        3,
    );
    let pool = SimConfig::builder()
        .nodes(profile.nodes)
        .seed(3)
        .build_pool();
    let data = collect_offline(&pool, &jobs, &tcfg, &starts);
    let mut backend = SimConfig::builder().nodes(profile.nodes).build();
    let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![
        train_method(
            MethodKind::Reactive,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        ),
        train_method(
            MethodKind::AvgHeuristic,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        ),
        train_method(
            MethodKind::RandomForest,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        ),
    ];

    println!(
        "evaluating 16 validation episodes of 48h x {}-node pairs ...\n",
        tcfg.episode.pair_nodes
    );
    let report = evaluate(
        &mut methods,
        &mut backend,
        &jobs,
        val_range,
        &EvalConfig {
            episode: tcfg.episode,
            n_episodes: 16,
            seed: 5,
        },
    );
    for load in LoadLevel::all() {
        let n = report.episodes_at(load);
        if n == 0 {
            continue;
        }
        println!("{} load ({n} episodes):", load.label());
        for name in &report.method_names {
            let s = report.summarize(name, load);
            println!(
                "  {:14} interruption {:6.2}h, overlap {:6.2}h, zero-interruption {:3.0}%",
                s.method,
                s.avg_interruption_h,
                s.avg_overlap_h,
                s.zero_interruption_frac * 100.0
            );
        }
    }
}
