//! Quickstart: generate a cluster workload, replay it through the Slurm
//! simulator, and run one proactive-provisioning episode.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mirage::core::episode::{run_episode, Action, EpisodeConfig};
use mirage::prelude::*;
use mirage::trace::stats;

fn main() {
    // 1. A scaled-down A100-like cluster and one month of synthetic work.
    let profile = ClusterProfile::a100().scaled(0.5);
    let mut cfg = SynthConfig::new(profile.clone(), 42);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    let (jobs, report) = clean_trace(&raw, profile.nodes);
    println!(
        "generated {} raw jobs -> {} after cleaning ({} oversized removed, {} chains merged)",
        report.original, report.filtered, report.oversized_removed, report.groups_merged
    );

    // 2. Replay it through the Slurm simulator (the event-driven backend,
    //    selected by value through the builder).
    let mut backend = SimConfig::builder().nodes(profile.nodes).build();
    backend.load_trace(&jobs);
    backend.run_to_completion();
    let done = backend.completed();
    let m = backend.metrics();
    println!(
        "replayed: {} jobs completed, utilization {:.0}%, avg wait {:.1}h, makespan {:.1} days",
        m.completed_jobs,
        m.utilization * 100.0,
        m.avg_wait / HOUR as f64,
        m.makespan as f64 / DAY as f64,
    );
    let (mn_jobs, mn_hours) = stats::multi_node_shares(&done);
    println!(
        "multi-node jobs: {:.0}% of jobs but {:.0}% of node-hours",
        mn_jobs * 100.0,
        mn_hours * 100.0
    );

    // 3. One provisioning episode: a pair of chained 12-hour sub-jobs.
    //    Compare the reactive user with a simple proactive rule.
    let ecfg = EpisodeConfig {
        pair_nodes: 1,
        pair_timelimit: 12 * HOUR,
        pair_runtime: 12 * HOUR,
        decision_interval: HOUR,
        history_k: 8,
        warmup: 3 * DAY,
        pair_user: 9999,
        fault_features: false,
        hetero_features: false,
    };
    let t0 = 14 * DAY;
    let reactive = run_episode(&mut backend, &jobs, &ecfg, t0, |_| Action::Wait);
    let proactive = run_episode(&mut backend, &jobs, &ecfg, t0, |ctx| {
        // Submit the successor two hours before the predecessor's limit.
        if ctx.pred_started && ctx.pred_remaining <= 2 * HOUR {
            Action::Submit
        } else {
            Action::Wait
        }
    });
    println!("\nprovisioning a pair of chained 12h sub-jobs at t0 = day 14:");
    println!(
        "  reactive : interruption {:.2}h, overlap {:.2}h",
        reactive.outcome.interruption as f64 / HOUR as f64,
        reactive.outcome.overlap as f64 / HOUR as f64,
    );
    println!(
        "  proactive: interruption {:.2}h, overlap {:.2}h (submitted {})",
        proactive.outcome.interruption as f64 / HOUR as f64,
        proactive.outcome.overlap as f64 / HOUR as f64,
        if proactive.submitted_by_policy {
            "by policy"
        } else {
            "reactively"
        },
    );
}
