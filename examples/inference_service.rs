//! Long-running inference service: the paper's motivating scenario.
//!
//! A scientist deploys a real-time inference service (e.g. transient
//! celestial-object detection) as a chain of 24-hour single-node sub-jobs
//! on a busy V100-like cluster. Each hand-off between consecutive sub-jobs
//! either interrupts the service (gap) or wastes a little overlap. This
//! example trains Mirage's ensemble baseline on the early trace and
//! compares cumulative service interruption against the reactive user
//! over a chain of sub-jobs.
//!
//! ```sh
//! cargo run --release --example inference_service
//! ```

use mirage::core::chain::provision_chain;
use mirage::core::episode::EpisodeConfig;
use mirage::core::train::{
    collect_offline, sample_training_starts, train_method, MethodKind, TrainConfig,
};
use mirage::prelude::*;

fn main() {
    // A V100-like cluster, scaled for a fast example, with six months of
    // background work.
    let profile = ClusterProfile::v100().scaled(0.5);
    let mut scfg = SynthConfig::new(profile.clone(), 7);
    scfg.months = Some(6);
    let raw = TraceGenerator::new(scfg).generate();
    let (jobs, _) = clean_trace(&raw, profile.nodes);
    let split = split_by_time(&jobs, 0.8);
    let train_range = (jobs.first().unwrap().submit, split.split_time);

    // The service: chained 24h single-node sub-jobs, decisions every hour.
    let tcfg = TrainConfig {
        episode: EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 24 * HOUR,
            pair_runtime: 24 * HOUR,
            decision_interval: HOUR,
            history_k: 12,
            warmup: 4 * DAY,
            pair_user: 77777,
            fault_features: false,
            hetero_features: false,
        },
        offline_episodes: 12,
        ..TrainConfig::default()
    };

    println!("training the XGBoost wait predictor on the first 80% of the trace ...");
    let starts = sample_training_starts(
        &jobs,
        profile.nodes,
        train_range.0,
        train_range.1,
        &tcfg.episode,
        tcfg.offline_episodes,
        1,
    );
    let pool = SimConfig::builder()
        .nodes(profile.nodes)
        .seed(1)
        .build_pool();
    let data = collect_offline(&pool, &jobs, &tcfg, &starts);
    let mut backend = SimConfig::builder().nodes(profile.nodes).build();
    let mut mirage_policy =
        train_method(MethodKind::Xgboost, &pool, &jobs, &tcfg, &data, train_range);
    let mut reactive = train_method(
        MethodKind::Reactive,
        &pool,
        &jobs,
        &tcfg,
        &data,
        train_range,
    );

    // Provision a whole chain of sub-jobs across the validation range:
    // sub-job i+1 is provisioned while sub-job i runs (§4.1's rolling
    // predecessor-successor pair), via the chain API.
    let chain_len = 7;
    let t0 = split.split_time + tcfg.episode.warmup;
    println!(
        "\nservice chain of {chain_len} daily sub-jobs starting at day {:.0}:",
        t0 as f64 / DAY as f64
    );
    let r = provision_chain(
        &mut backend,
        &jobs,
        &tcfg.episode,
        t0,
        chain_len,
        reactive.as_mut(),
    );
    let m = provision_chain(
        &mut backend,
        &jobs,
        &tcfg.episode,
        t0,
        chain_len,
        mirage_policy.as_mut(),
    );
    println!(
        "{:>8} {:>22} {:>22}",
        "handoff", "reactive gap/overlap", "mirage gap/overlap"
    );
    for (i, (hr, hm)) in r.handoffs.iter().zip(&m.handoffs).enumerate() {
        println!(
            "{:>8} {:>10.2}h /{:>7.2}h {:>10.2}h /{:>7.2}h",
            i + 1,
            hr.outcome.interruption as f64 / HOUR as f64,
            hr.outcome.overlap as f64 / HOUR as f64,
            hm.outcome.interruption as f64 / HOUR as f64,
            hm.outcome.overlap as f64 / HOUR as f64,
        );
    }
    let rs = r.summary();
    let ms = m.summary();
    println!(
        "\ncumulative interruption: reactive {:.1}h vs mirage {:.1}h ({}/{} gap-free handoffs vs {}/{})",
        r.total_interruption as f64 / HOUR as f64,
        m.total_interruption as f64 / HOUR as f64,
        r.zero_interruption_handoffs,
        rs.handoffs,
        m.zero_interruption_handoffs,
        ms.handoffs,
    );
}
