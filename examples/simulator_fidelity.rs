//! Comparing the fast event-driven simulator against the tick-driven
//! reference simulator on one sampled week (§5.2 in miniature).
//!
//! ```sh
//! cargo run --release --example simulator_fidelity
//! ```

use mirage::prelude::*;
use mirage::sim::fidelity::run_both;

fn main() {
    let profile = ClusterProfile::v100().scaled(0.5);
    let mut cfg = SynthConfig::new(profile.clone(), 3);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    let (jobs, _) = clean_trace(&raw, profile.nodes);

    // One week out of the month.
    let week: Vec<_> = jobs
        .iter()
        .filter(|j| j.submit >= WEEK && j.submit < 2 * WEEK)
        .cloned()
        .collect();
    println!("replaying {} jobs through both simulators ...", week.len());
    let (report, t_fast, t_ref) = run_both(&week, profile.nodes);
    println!("jobs compared        : {}", report.jobs_compared);
    println!(
        "makespan             : fast {:.1}h vs reference {:.1}h ({:.2}% apart)",
        report.makespan_fast as f64 / HOUR as f64,
        report.makespan_reference as f64 / HOUR as f64,
        report.makespan_rel_diff * 100.0
    );
    println!(
        "JCT geo-mean diff    : {:.2}%  (paper budget: <= 15%)",
        report.jct_geomean_diff * 100.0
    );
    println!(
        "avg wait             : fast {:.2}h vs reference {:.2}h",
        report.avg_wait_fast / HOUR as f64,
        report.avg_wait_reference / HOUR as f64
    );
    println!(
        "wall-clock           : fast {:?} vs reference {:?} ({:.1}x speedup)",
        t_fast,
        t_ref,
        t_ref.as_secs_f64() / t_fast.as_secs_f64().max(1e-9)
    );
}
