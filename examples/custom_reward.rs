//! User-configurable reward shaping (§4.5).
//!
//! Two users provision the same chained jobs on the same cluster:
//! a performance-sensitive user (interruption penalty e_I ≫ e_O) and a
//! resource-waste-averse user (e_O ≫ e_I). Both train a DQN provisioner;
//! the learned behaviors differ — the performance-sensitive agent submits
//! earlier and accepts overlap, the frugal agent waits longer.
//!
//! ```sh
//! cargo run --release --example custom_reward
//! ```

use mirage::core::episode::EpisodeConfig;
use mirage::core::eval::{evaluate, EvalConfig, LoadLevel};
use mirage::core::reward::RewardShaper;
use mirage::core::train::{
    collect_offline, sample_training_starts, train_method, MethodKind, TrainConfig,
};
use mirage::core::ProvisionPolicy;
use mirage::prelude::*;
use mirage::rl::DqnConfig;

fn main() {
    let profile = ClusterProfile::v100().scaled(0.4);
    let mut scfg = SynthConfig::new(profile.clone(), 21);
    scfg.months = Some(5);
    let raw = TraceGenerator::new(scfg).generate();
    let (jobs, _) = clean_trace(&raw, profile.nodes);
    let split = split_by_time(&jobs, 0.8);
    let train_range = (jobs.first().unwrap().submit, split.split_time);
    let val_range = (split.split_time, jobs.last().unwrap().submit);

    let users = [
        (
            "performance-sensitive (e_I=4, e_O=1)",
            RewardShaper {
                e_interrupt: 4.0,
                e_overlap: 1.0,
            },
        ),
        (
            "waste-averse         (e_I=1, e_O=4)",
            RewardShaper {
                e_interrupt: 1.0,
                e_overlap: 4.0,
            },
        ),
    ];

    for (label, shaper) in users {
        let tcfg = TrainConfig {
            episode: EpisodeConfig {
                pair_timelimit: 24 * HOUR,
                pair_runtime: 24 * HOUR,
                ..EpisodeConfig::default()
            },
            shaper,
            offline_episodes: 16,
            online_episodes: 50,
            // Rewards scale with e_I/e_O; keep the TD loss out of its
            // saturated (linear) regime so the preference signal survives.
            dqn: DqnConfig {
                huber_delta: 20.0,
                ..DqnConfig::default()
            },
            ..TrainConfig::default()
        };

        println!("training a transformer+DQN provisioner for the {label} user ...");
        let starts = sample_training_starts(
            &jobs,
            profile.nodes,
            train_range.0,
            train_range.1,
            &tcfg.episode,
            tcfg.offline_episodes,
            13,
        );
        let pool = SimConfig::builder()
            .nodes(profile.nodes)
            .seed(13)
            .build_pool();
        let data = collect_offline(&pool, &jobs, &tcfg, &starts);
        let mut backend = SimConfig::builder().nodes(profile.nodes).build();
        let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![train_method(
            MethodKind::TransformerDqn,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        )];
        let report = evaluate(
            &mut methods,
            &mut backend,
            &jobs,
            val_range,
            &EvalConfig {
                episode: tcfg.episode,
                n_episodes: 20,
                seed: 17,
            },
        );
        let mut tot_i = 0.0;
        let mut tot_o = 0.0;
        let mut n = 0usize;
        for load in LoadLevel::all() {
            let s = report.summarize("transformer+DQN", load);
            tot_i += s.avg_interruption_h * s.episodes as f64;
            tot_o += s.avg_overlap_h * s.episodes as f64;
            n += s.episodes;
        }
        println!(
            "  -> over {n} validation episodes: avg interruption {:.2}h, avg overlap {:.2}h\n",
            tot_i / n.max(1) as f64,
            tot_o / n.max(1) as f64
        );
    }
    println!("Expected shape: the waste-averse agent shows lower overlap; the");
    println!("performance-sensitive agent trades overlap for fewer/shorter gaps.");
}
